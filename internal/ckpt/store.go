// Package ckpt implements the durability subsystem around the redo log:
// a segmented on-disk log store, streaming checkpoints of committed state
// partitioned by primary-key range, and log truncation below the checkpoint's
// stable timestamp. Package recovery consumes the same store to restore
// checkpoint partitions in parallel and replay only the log tail.
//
// The store doubles as the crash-injection surface: a wal.Faults registry
// can arm named fault points (torn batch write, freeze between flush and
// ack, partial partition write, crash before the manifest pointer flips),
// and once any fault fires the store freezes — every subsequent write is
// silently discarded, which models a killed process whose acknowledgements
// after the crash point never happened. See docs/durability.md.
package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/internal/wal"
)

// Fault points understood by the store. Arm them on the wal.Faults registry
// passed to SetFaults. The names are aliases into the central fault-point
// registry (wal/faults.go, enforced by mvlint's faultpoint analyzer).
const (
	// FaultWALTear tears a group-commit batch mid-write: a prefix of the
	// batch reaches the segment, then the store freezes. The tail of the
	// batch — typically mid-record — is the torn tail recovery tolerates.
	FaultWALTear = wal.FaultWALTear
	// FaultWALFreeze freezes after a batch fully reaches the segment: the
	// kill lands between the flush and later commit acknowledgements.
	FaultWALFreeze = wal.FaultWALFreeze
	// FaultPartWrite tears a checkpoint partition write and freezes: a crash
	// mid-checkpoint, before the manifest exists.
	FaultPartWrite = wal.FaultCkptPartition
	// FaultManifest freezes after the manifest file is written but before
	// CURRENT flips to it: the checkpoint is complete on disk yet invisible,
	// so recovery uses the previous checkpoint (or none).
	FaultManifest = wal.FaultCkptManifest
)

// ErrFrozen is returned by operations refused because the store froze at an
// injected crash point.
var ErrFrozen = fmt.Errorf("ckpt: store frozen (simulated crash)")

// StoreOptions selects how live segments are opened.
type StoreOptions struct {
	// ODSync opens live segments with O_DSYNC: every Write is synchronous,
	// so the per-batch Sync hook becomes a no-op. The alternative to
	// explicit group-commit fsync, at one synchronous I/O per batch either
	// way.
	ODSync bool
	// Faults, when non-nil, wraps live segments in a wal.FaultFile driven by
	// this registry: the byte-granularity fault model (write errors, short
	// writes, ENOSPC, fsync errors, power loss) used by the sync-commit
	// crash suites. Store-level freeze faults (SetFaults) are independent
	// and may share the same registry.
	Faults *wal.Faults
}

// Store is a durability directory: numbered write-ahead-log segments (the
// live one receives group-commit batches via Write, making the store a
// core.Config.LogSink), checkpoint directories, and a CURRENT pointer naming
// the latest published checkpoint.
type Store struct {
	dir    string
	opts   StoreOptions
	faults *wal.Faults

	mu        sync.Mutex
	frozen    atomic.Bool
	err       error // first latched write/fsync failure; never cleared
	seg       wal.File
	segFault  *wal.FaultFile // seg's fault wrapper when opts.Faults != nil
	segPath   string
	segSize   int64 // bytes successfully handed to the live segment
	segSynced int64 // live-segment fsync barrier (bytes known durable)
	segSeq    uint64
	ckptSeq   uint64
}

// OpenStore opens (creating if needed) a store rooted at dir and starts a
// fresh live segment after any existing ones — reopening after a crash never
// appends to a possibly-torn segment.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreWith(dir, StoreOptions{})
}

// OpenStoreWith is OpenStore with explicit segment options.
func OpenStoreWith(dir string, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.log", &n); err == nil && n > s.segSeq {
			s.segSeq = n
		}
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%d", &n); err == nil && n > s.ckptSeq {
			s.ckptSeq = n
		}
	}
	if err := s.openSegmentLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// SetFaults attaches a crash-injection registry. Call before any load runs.
func (s *Store) SetFaults(f *wal.Faults) { s.faults = f }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) openSegmentLocked() error {
	s.segSeq++
	s.segPath = filepath.Join(s.dir, fmt.Sprintf("wal-%06d.log", s.segSeq))
	flags := os.O_CREATE | os.O_EXCL | os.O_WRONLY
	if s.opts.ODSync {
		flags |= syscall.O_DSYNC
	}
	f, err := os.OpenFile(s.segPath, flags, 0o644)
	if err != nil {
		return err
	}
	var seg wal.File = f
	var segFault *wal.FaultFile
	if s.opts.Faults != nil {
		segFault = wal.NewFaultFile(f, s.opts.Faults)
		seg = segFault
	}
	if _, err := seg.Write(wal.SegmentHeader()); err != nil {
		seg.Close()
		return err
	}
	s.seg = seg
	s.segFault = segFault
	s.segSize = int64(len(wal.SegmentHeader()))
	s.segSynced = s.segSize
	return nil
}

// Write appends one group-commit batch to the live segment (io.Writer for
// wal.Log). Batches never straddle segments: rotation only happens between
// Write calls, under the same mutex. A frozen store reports success and
// discards the bytes — the modelled process is dead; nothing it "wrote"
// after the crash point exists.
func (s *Store) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen.Load() {
		return len(p), nil
	}
	if err := s.err; err != nil {
		return 0, err
	}
	if s.faults.Fire(FaultWALTear) {
		n := len(p) / 2
		if n == 0 && len(p) > 0 {
			n = 1
		}
		s.seg.Write(p[:n])
		s.latchLocked(s.seg.Sync())
		s.frozen.Store(true)
		return len(p), nil
	}
	if s.faults.Fire(FaultWALFreeze) {
		s.seg.Write(p)
		s.latchLocked(s.seg.Sync())
		s.frozen.Store(true)
		return len(p), nil
	}
	before := s.segSize
	n, err := s.seg.Write(p)
	s.segSize += int64(n)
	if err != nil {
		s.latchLocked(err)
		// A batch that fails partway leaves whole frames of transactions on
		// disk whose commits were all just refused — recovery would replay
		// them even though the engine aborted them and told the clients so.
		// Roll the segment back to the batch boundary: the store is latched,
		// nothing writes after this, and the disk again holds exactly the
		// acknowledged records. A power loss is different — the process
		// modelled here is dead and cleans up nothing, so the torn tail
		// stays for recovery's torn-tail reader (and markers) to resolve.
		if !errors.Is(err, wal.ErrCrashed) {
			s.rollbackLocked(before)
		}
		return n, err
	}
	if s.opts.ODSync {
		s.segSynced = s.segSize // O_DSYNC writes land durable
	}
	return len(p), nil
}

// Sync forces the live segment's bytes to stable storage — the per-batch
// hook wal.Log calls at Fsync durability. A latched failure is returned
// without touching the file again: after a failed fsync the kernel may have
// dropped the dirty pages and cleared its error state, so a retry would
// falsely succeed (fsyncgate). With O_DSYNC segments every write is already
// synchronous and Sync is a no-op. A frozen store reports success, matching
// its Write contract (the modelled process is dead; nothing it observed
// after the crash point happened).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen.Load() {
		return nil
	}
	if err := s.err; err != nil {
		return err
	}
	if s.opts.ODSync || s.seg == nil {
		s.segSynced = s.segSize
		return nil
	}
	err := s.seg.Sync()
	s.latchLocked(err)
	if err == nil {
		s.segSynced = s.segSize
	} else if !errors.Is(err, wal.ErrCrashed) {
		// The kernel reported the batch's pages lost: the commits in it were
		// refused, so drop the suspect bytes back to the last barrier rather
		// than leave refused records for recovery to resurrect. Best effort —
		// the store is latched either way.
		s.rollbackLocked(s.segSynced)
	}
	return err
}

// rollbackLocked shrinks the live segment to off, dropping the bytes of a
// refused batch. It only ever shrinks: if the file already sits at or below
// off (a failing device may have dropped more than the batch — the fsyncgate
// model truncates to its own barrier), extending it would manufacture a
// zero-filled hole that reads as corruption. Callers hold s.mu.
func (s *Store) rollbackLocked(off int64) {
	fi, err := os.Stat(s.segPath)
	if err != nil || fi.Size() <= off {
		return
	}
	if terr := os.Truncate(s.segPath, off); terr == nil {
		s.segSize = off
	}
}

// latchLocked records the first durability failure; it is never cleared.
// Callers hold s.mu.
func (s *Store) latchLocked(err error) {
	if err != nil && s.err == nil {
		s.err = err
	}
}

// latch is latchLocked for callers not holding s.mu.
func (s *Store) latch(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	s.latchLocked(err)
	s.mu.Unlock()
}

// Err returns the first latched write or fsync failure, or nil. A non-nil
// Err means the store can no longer promise durability; the checkpointer's
// health API surfaces it.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Rotate seals the live segment (fsync + close) and starts the next one.
// The checkpointer rotates after flushing the log so that every record at
// or below the stable timestamp lives in sealed segments, which truncation
// may rewrite.
func (s *Store) Rotate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen.Load() {
		return nil
	}
	if err := s.err; err != nil {
		return err
	}
	if err := s.seg.Sync(); err != nil {
		s.latchLocked(err)
		return err
	}
	if err := s.seg.Close(); err != nil {
		return err
	}
	if err := s.openSegmentLocked(); err != nil {
		// The old segment is sealed but the next one never opened: the store
		// has no live segment to write to, which is fatal, not transient.
		s.latchLocked(err)
		return err
	}
	return nil
}

// Freeze stops all future writes, modelling the crash instant. Load workers
// poll Frozen after each commit: an acknowledgement observed after the
// freeze may or may not be durable.
func (s *Store) Freeze() { s.frozen.Store(true) }

// Frozen reports whether the store froze.
func (s *Store) Frozen() bool { return s.frozen.Load() }

// Close fsyncs and closes the live segment. A frozen store's segment is
// closed without syncing (the sync would model I/O the dead process never
// issued; the bytes already written remain readable). A sync failure at
// close is latched and reported like any other — silently dropping it is
// the fsyncgate mistake.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	if !s.frozen.Load() && s.err == nil {
		s.latchLocked(s.seg.Sync())
	}
	err := s.seg.Close()
	s.seg = nil
	s.segFault = nil
	if err == nil {
		err = s.err
	}
	return err
}

// Crash simulates a power loss on the live segment: at most keep bytes past
// the last fsync barrier survive, the rest are discarded, and every later
// segment operation fails with wal.ErrCrashed. Only available on stores
// opened with StoreOptions.Faults (the byte-granularity crash model); it
// replaces Freeze for the sync-commit suites, where an acknowledgement must
// imply the bytes sit at or below the barrier.
func (s *Store) Crash(keep int64) error {
	s.mu.Lock()
	ff := s.segFault
	s.mu.Unlock()
	if ff == nil {
		return fmt.Errorf("ckpt: Crash requires StoreOptions.Faults")
	}
	return ff.Crash(keep)
}

// ChopTail truncates the live segment by n bytes: the "drop tail bytes"
// crash. It acts directly on the file — harness scalpel, not a store write —
// so it works on a frozen store.
func (s *Store) ChopTail(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fi, err := os.Stat(s.segPath)
	if err != nil {
		return err
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(s.segPath, size)
}

// SegmentPaths returns every log segment in sequence order, sealed segments
// first, the live one last.
func (s *Store) SegmentPaths() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.log", &n); err == nil {
			paths = append(paths, filepath.Join(s.dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// CompactBelow rewrites sealed segments dropping every record with end
// timestamp at or below stable — the log truncation step of a checkpoint:
// those transactions' effects are in the checkpoint, so replaying them would
// be redundant (recovery filters on the stable timestamp anyway; truncation
// is what bounds log growth). Segments left empty are removed. The rewrite
// is atomic per segment (temp file + rename), so a crash mid-compaction
// leaves each segment either intact or fully compacted — both replay
// correctly. It returns the number of log bytes reclaimed.
func (s *Store) CompactBelow(stable uint64) (int64, error) {
	if s.frozen.Load() {
		return 0, ErrFrozen
	}
	paths, err := s.SegmentPaths()
	if err != nil {
		return 0, err
	}
	var reclaimed int64
	for _, path := range paths {
		if path == s.segPath {
			continue // never rewrite the live segment
		}
		n, err := s.compactSegment(path, stable)
		if err != nil {
			return reclaimed, err
		}
		reclaimed += n
	}
	return reclaimed, nil
}

func (s *Store) compactSegment(path string, stable uint64) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return 0, err
	}
	var keep []*wal.Record
	dropped := 0
	d := wal.NewReader(f)
	for {
		rec, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return 0, fmt.Errorf("ckpt: compacting %s: %w", path, err)
		}
		if rec.EndTS <= stable {
			dropped++
			continue
		}
		keep = append(keep, rec)
	}
	f.Close()
	if dropped == 0 {
		return 0, nil
	}
	if len(keep) == 0 {
		if err := os.Remove(path); err != nil {
			return 0, err
		}
		return fi.Size(), nil
	}
	tmp := path + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	buf := wal.SegmentHeader()
	for _, rec := range keep {
		buf = wal.EncodeRecord(buf, rec)
	}
	if _, err := out.Write(buf); err != nil {
		out.Close()
		return 0, err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return 0, err
	}
	if err := out.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	return fi.Size() - int64(len(buf)), nil
}

// nextCkptSeq reserves the next checkpoint sequence number.
func (s *Store) nextCkptSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ckptSeq++
	return s.ckptSeq
}

// faultFile routes a checkpoint file's writes through the store's
// freeze/fault state so a crash can land mid-partition.
type faultFile struct {
	s     *Store
	f     *os.File
	point string
}

func (w *faultFile) Write(p []byte) (int, error) {
	if w.s.frozen.Load() {
		return len(p), nil
	}
	if w.s.faults.Fire(w.point) {
		n := len(p) / 2
		if n == 0 && len(p) > 0 {
			n = 1
		}
		w.f.Write(p[:n])
		w.s.latch(w.f.Sync())
		w.s.Freeze()
		return len(p), nil
	}
	return w.f.Write(p)
}

// publishCheckpoint writes the manifest into the checkpoint directory and
// flips CURRENT to it. Both steps are write-temp-then-rename, so CURRENT
// always names a directory whose manifest is complete; the FaultManifest
// point freezes between the two renames, leaving a complete but unpublished
// checkpoint.
func (s *Store) publishCheckpoint(dirName string, man *Manifest) error {
	if s.frozen.Load() {
		return ErrFrozen
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	manPath := filepath.Join(s.dir, dirName, "manifest.json")
	if err := writeFileSync(manPath, raw); err != nil {
		return err
	}
	if s.faults.Fire(FaultManifest) {
		s.Freeze()
		return ErrFrozen
	}
	if s.frozen.Load() {
		return ErrFrozen
	}
	return writeFileSync(filepath.Join(s.dir, "CURRENT"), []byte(dirName+"\n"))
}

// writeFileSync writes data to path atomically: temp file, fsync, rename.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LatestManifest returns the most recently published checkpoint's manifest
// and directory path, or (nil, "", nil) when no checkpoint has been
// published.
func (s *Store) LatestManifest() (*Manifest, string, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, "CURRENT"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", nil
		}
		return nil, "", err
	}
	dirName := strings.TrimSpace(string(raw))
	dir := filepath.Join(s.dir, dirName)
	manRaw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, "", fmt.Errorf("ckpt: CURRENT names %s but its manifest is unreadable: %w", dirName, err)
	}
	var man Manifest
	if err := json.Unmarshal(manRaw, &man); err != nil {
		return nil, "", fmt.Errorf("ckpt: manifest in %s: %w", dirName, err)
	}
	return &man, dir, nil
}
