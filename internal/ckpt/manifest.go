package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Partition file format: an 8-byte magic, then Rows rows of
//
//	key     u64 little-endian (primary key, keyenc composite encoding)
//	length  u32 little-endian
//	payload length bytes
//
// The CRC-32C of the row stream (everything after the magic) is stored in
// the manifest, not the file, so a partition torn mid-write can never look
// self-consistent.
const partMagic = "CKPTPRT1"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// PartInfo describes one checkpoint partition file in a manifest.
type PartInfo struct {
	File  string `json:"file"`
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Rows  uint64 `json:"rows"`
	Bytes uint64 `json:"bytes"` // row-stream bytes (excludes magic)
	CRC   uint32 `json:"crc32c"`
}

// TableManifest lists one table's partitions, ordered by key range.
type TableManifest struct {
	Name  string     `json:"name"`
	Parts []PartInfo `json:"partitions"`
}

// Manifest is the checkpoint's root record: which tables it contains, split
// into which partition files, and the stable timestamp S the snapshot was
// taken at. Recovery restores every partition, then replays only log records
// with end timestamp above StableTS.
type Manifest struct {
	Seq      uint64          `json:"seq"`
	StableTS uint64          `json:"stable_ts"`
	Tables   []TableManifest `json:"tables"`
}

// MaxRows returns the largest partition row count in the manifest, a cheap
// proxy for restore skew.
func (m *Manifest) MaxRows() uint64 {
	var max uint64
	for _, t := range m.Tables {
		for _, p := range t.Parts {
			if p.Rows > max {
				max = p.Rows
			}
		}
	}
	return max
}

// partWriter streams rows into one partition file, tracking the running CRC
// and counters recorded in the manifest. Writes go through a faultFile so
// injected crashes can tear a partition.
type partWriter struct {
	f       *os.File
	bw      *bufio.Writer
	crc     uint32
	rows    uint64
	bytes   uint64
	scratch [12]byte
}

func newPartWriter(s *Store, path string) (*partWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	p := &partWriter{f: f}
	p.bw = bufio.NewWriterSize(&faultFile{s: s, f: f, point: FaultPartWrite}, 64<<10)
	if _, err := p.bw.WriteString(partMagic); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

func (p *partWriter) add(key uint64, payload []byte) error {
	binary.LittleEndian.PutUint64(p.scratch[0:8], key)
	binary.LittleEndian.PutUint32(p.scratch[8:12], uint32(len(payload)))
	p.crc = crc32.Update(p.crc, crcTable, p.scratch[:])
	p.crc = crc32.Update(p.crc, crcTable, payload)
	if _, err := p.bw.Write(p.scratch[:]); err != nil {
		return err
	}
	if _, err := p.bw.Write(payload); err != nil {
		return err
	}
	p.rows++
	p.bytes += 12 + uint64(len(payload))
	return nil
}

// finish flushes, fsyncs and closes the file, returning the manifest entry
// fields. On a frozen store the flush silently discards; the manifest never
// publishes in that case, so the stale values are harmless.
func (p *partWriter) finish(s *Store) (rows, bytes uint64, crc uint32, err error) {
	if err := p.bw.Flush(); err != nil {
		p.f.Close()
		return 0, 0, 0, err
	}
	if !s.Frozen() {
		if err := p.f.Sync(); err != nil {
			p.f.Close()
			return 0, 0, 0, err
		}
	}
	if err := p.f.Close(); err != nil {
		return 0, 0, 0, err
	}
	return p.rows, p.bytes, p.crc, nil
}

func (p *partWriter) abandon() {
	p.f.Close()
}

// ReadPartition streams a checkpoint partition's rows to emit, verifying the
// magic, the manifest row count, and the CRC-32C over the row stream. The
// payload is valid only during the callback.
func ReadPartition(path string, info PartInfo, emit func(key uint64, payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	magic := make([]byte, len(partMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("ckpt: %s: short magic: %w", path, err)
	}
	if string(magic) != partMagic {
		return fmt.Errorf("ckpt: %s: bad magic %q", path, magic)
	}
	var (
		hdr     [12]byte
		payload []byte
		crc     uint32
	)
	for row := uint64(0); row < info.Rows; row++ {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return fmt.Errorf("ckpt: %s: row %d header: %w", path, row, err)
		}
		key := binary.LittleEndian.Uint64(hdr[0:8])
		n := binary.LittleEndian.Uint32(hdr[8:12])
		if uint64(n) > info.Bytes {
			return fmt.Errorf("ckpt: %s: row %d length %d exceeds partition size", path, row, n)
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("ckpt: %s: row %d payload: %w", path, row, err)
		}
		crc = crc32.Update(crc, crcTable, hdr[:])
		crc = crc32.Update(crc, crcTable, payload)
		if err := emit(key, payload); err != nil {
			return err
		}
	}
	if crc != info.CRC {
		return fmt.Errorf("ckpt: %s: CRC mismatch: file %08x, manifest %08x", path, crc, info.CRC)
	}
	return nil
}
