// Package workload implements the parameterized workloads of Section 5: the
// homogeneous R-read/W-write transaction over an N-row table of 24-byte
// rows, the read-only variants, the long reporting reader, and key
// distributions (uniform, and the TATP-style non-uniform generator).
package workload

import (
	"encoding/binary"
	"math/rand"

	"repro/internal/core"
	"repro/internal/keyenc"
)

// RowSize is the paper's row size: "each row is 24 bytes" (Section 5.1).
const RowSize = 24

// Row builds a 24-byte payload: 8-byte key, 8-byte value, 8 bytes of filler.
func Row(key, val uint64) []byte {
	p := make([]byte, RowSize)
	binary.LittleEndian.PutUint64(p, key)
	binary.LittleEndian.PutUint64(p[8:], val)
	return p
}

// RowKey extracts the key of a row payload.
func RowKey(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }

// RowVal extracts the value of a row payload.
func RowVal(p []byte) uint64 { return binary.LittleEndian.Uint64(p[8:]) }

// Dist generates keys. Implementations must be safe to call from a single
// goroutine with its own rand.Rand.
type Dist interface {
	Next(rng *rand.Rand) uint64
}

// Uniform draws keys uniformly from [0, N).
type Uniform struct{ N uint64 }

// Next returns a uniform key.
func (u Uniform) Next(rng *rand.Rand) uint64 { return rng.Uint64() % u.N }

// NURand is the TATP/TPC-C style non-uniform generator over [0, N):
// (rand(0,A) | rand(0,N-1)) % N. A is chosen per the TATP specification
// based on the population size.
type NURand struct {
	A uint64
	N uint64
}

// NewNURand picks the TATP-specified A for the population.
func NewNURand(n uint64) NURand {
	var a uint64
	switch {
	case n <= 1_000_000:
		a = 65_535
	case n <= 10_000_000:
		a = 1_048_575
	default:
		a = 2_097_151
	}
	return NURand{A: a, N: n}
}

// Next returns a skewed key.
func (d NURand) Next(rng *rand.Rand) uint64 {
	x := rng.Uint64() % (d.A + 1)
	y := rng.Uint64() % d.N
	return (x | y) % d.N
}

// Table builds the single-table schema of Section 5.1 with buckets sized so
// there are no collisions (as in the paper's setup).
func Table(db *core.Database, n uint64) (*core.Table, error) {
	buckets := int(n)
	if buckets < 1024 {
		buckets = 1024
	}
	tbl, err := db.CreateTable(core.TableSpec{
		Name:    "rows",
		Indexes: []core.IndexSpec{{Name: "pk", Key: RowKey, Buckets: buckets}},
	})
	if err != nil {
		return nil, err
	}
	return tbl, nil
}

// OrderedTable builds the same single-table schema with an ordered
// (range-scannable) primary index instead of a hash index.
func OrderedTable(db *core.Database, n uint64) (*core.Table, error) {
	tbl, err := db.CreateTable(core.TableSpec{
		Name:    "rows",
		Indexes: []core.IndexSpec{{Name: "pk", Key: RowKey, Ordered: true}},
	})
	if err != nil {
		return nil, err
	}
	return tbl, nil
}

// SecondaryLayout is the composite key layout of the secondary-index
// workload: (group, id) packed order-preserving, so all rows of one group
// are one encoded prefix range.
var SecondaryLayout = keyenc.MustLayout(
	keyenc.Field{Name: "grp", Bits: 16},
	keyenc.Field{Name: "id", Bits: 48},
)

// SecondaryTable builds the secondary-index schema: the hash primary index
// plus a non-unique ordered secondary on the composite (group, id), where a
// row's group is its value modulo groups. Updates that change the value
// migrate rows between groups, so the secondary index sees delete/insert
// churn on its duplicate-prefix chains.
func SecondaryTable(db *core.Database, n, groups uint64) (*core.Table, error) {
	buckets := int(n)
	if buckets < 1024 {
		buckets = 1024
	}
	secKey := func(p []byte) uint64 {
		return SecondaryLayout.MustEncode(RowVal(p)%groups, RowKey(p))
	}
	return db.CreateTable(core.TableSpec{
		Name: "rows",
		Indexes: []core.IndexSpec{
			{Name: "pk", Key: RowKey, Buckets: buckets},
			{Name: "grp", Key: secKey, Ordered: true, Composite: SecondaryLayout},
		},
	})
}

// Load populates the table with n rows keyed 0..n-1, value = key.
func Load(db *core.Database, tbl *core.Table, n uint64) {
	for k := uint64(0); k < n; k++ {
		db.LoadRow(tbl, Row(k, k))
	}
}

// Homogeneous is the parameterized transaction of Section 5.1: R reads and W
// writes uniformly and randomly scattered over N records.
type Homogeneous struct {
	Table *core.Table
	Dist  Dist
	R, W  int
}

// Run executes one transaction body against tx: R point reads followed by W
// read-modify-write updates on distinct random keys. It returns the number
// of rows read.
func (h Homogeneous) Run(tx *core.Tx, rng *rand.Rand) (int, error) {
	reads := 0
	for i := 0; i < h.R; i++ {
		key := h.Dist.Next(rng)
		err := tx.Scan(h.Table, 0, key, nil, func(r core.Row) bool {
			reads++
			return false
		})
		if err != nil {
			return reads, err
		}
	}
	for i := 0; i < h.W; i++ {
		key := h.Dist.Next(rng)
		newVal := rng.Uint64()
		_, err := tx.UpdateWhere(h.Table, 0, key, nil, func(old []byte) []byte {
			return Row(key, newVal)
		})
		if err != nil {
			return reads, err
		}
	}
	return reads, nil
}

// RangeMix is the range-heavy transaction over an ordered table: Scans range
// scans of Span consecutive keys starting at random offsets, followed by W
// point updates. It has no counterpart in the paper — the paper's prototype
// had only hash indexes — and exists to exercise the ordered-index access
// path: visibility-filtered cursors, scan-set rescans (MV/O serializable),
// range locks (MV/L serializable, 1V).
type RangeMix struct {
	Table *core.Table
	Dist  Dist
	N     uint64
	Scans int
	Span  uint64
	W     int
}

// Run executes one transaction body: Scans range scans and W updates. It
// returns the number of rows read.
func (m RangeMix) Run(tx *core.Tx, rng *rand.Rand) (int, error) {
	reads := 0
	for i := 0; i < m.Scans; i++ {
		lo := m.Dist.Next(rng)
		hi := lo + m.Span - 1
		if hi >= m.N {
			hi = m.N - 1
		}
		err := tx.ScanRange(m.Table, 0, lo, hi, nil, func(r core.Row) bool {
			reads++
			return true
		})
		if err != nil {
			return reads, err
		}
	}
	for i := 0; i < m.W; i++ {
		key := m.Dist.Next(rng)
		newVal := rng.Uint64()
		_, err := tx.UpdateWhere(m.Table, 0, key, nil, func(old []byte) []byte {
			return Row(key, newVal)
		})
		if err != nil {
			return reads, err
		}
	}
	return reads, nil
}

// SecondaryMix is the secondary-index transaction over a SecondaryTable:
// Scans composite prefix scans, each reading one whole group through the
// ordered secondary index, followed by W point updates through the primary
// index that assign random values — migrating the updated rows to random
// groups. It exercises the non-unique secondary access path: duplicate
// prefix chains, cross-index link/unlink on every update, and (under
// serializable isolation) prefix-shaped phantom protection.
type SecondaryMix struct {
	Table  *core.Table
	Dist   Dist // primary-key distribution for the updates
	N      uint64
	Groups uint64
	Scans  int
	W      int
}

// Run executes one transaction body. It returns the number of rows read.
func (m SecondaryMix) Run(tx *core.Tx, rng *rand.Rand) (int, error) {
	reads := 0
	for i := 0; i < m.Scans; i++ {
		g := rng.Uint64() % m.Groups
		err := tx.ScanPrefix(m.Table, 1, []uint64{g}, nil, func(r core.Row) bool {
			reads++
			return true
		})
		if err != nil {
			return reads, err
		}
	}
	for i := 0; i < m.W; i++ {
		key := m.Dist.Next(rng)
		newVal := rng.Uint64()
		_, err := tx.UpdateWhere(m.Table, 0, key, nil, func(old []byte) []byte {
			return Row(key, newVal)
		})
		if err != nil {
			return reads, err
		}
	}
	return reads, nil
}

// LongReader is the operational reporting query of Section 5.2.2: a
// transactionally consistent read-only transaction touching fraction rows of
// the table (the paper reads 10% of a 10M-row table, R = 1,000,000).
type LongReader struct {
	Table *core.Table
	N     uint64
	Rows  uint64 // number of rows to read
}

// Run reads Rows consecutive keys starting at a random offset, wrapping
// around the table. It returns the number of rows read.
func (l LongReader) Run(tx *core.Tx, rng *rand.Rand) (int, error) {
	start := rng.Uint64() % l.N
	reads := 0
	for i := uint64(0); i < l.Rows; i++ {
		key := (start + i) % l.N
		err := tx.Scan(l.Table, 0, key, nil, func(r core.Row) bool {
			reads++
			return false
		})
		if err != nil {
			return reads, err
		}
	}
	return reads, nil
}
