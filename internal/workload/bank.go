package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/keyenc"
)

// The bank workload is the multi-table torture mix behind cmd/mvsoak: an
// accounts table (key = account id, value = balance) and a ledger table
// (key = unique ledger id, value = packed transfer record) with an ordered
// "stmt" secondary index grouping ledger rows by source account. Every
// transaction records its footprint as a check.Txn, and the whole history
// is validated by check.History with the cross-table constraints from
// (*Bank).Constraints: conservation of money, ledger→accounts referential
// integrity, and balanced per-transaction account deltas.

// Table and index names of the bank schema, shared with the checker model.
const (
	BankAccountsTable = "accounts"
	BankLedgerTable   = "ledger"
	BankStmtIndex     = "stmt"
)

// BankStmtLayout is the composite key of the ledger's statement index:
// (source account, ledger id), so one account's ledger rows are one
// encoded prefix range. Ledger ids must fit in 48 bits.
var BankStmtLayout = keyenc.MustLayout(
	keyenc.Field{Name: "acct", Bits: 16},
	keyenc.Field{Name: "id", Bits: 48},
)

// LedgerValue packs a transfer record: source account (16 bits), target
// account (16 bits), amount (32 bits).
func LedgerValue(from, to, amt uint64) uint64 {
	return from<<48 | (to&0xffff)<<32 | amt&0xffffffff
}

// LedgerFrom extracts the source account of a packed transfer record.
func LedgerFrom(v uint64) uint64 { return v >> 48 }

// LedgerTo extracts the target account of a packed transfer record.
func LedgerTo(v uint64) uint64 { return (v >> 32) & 0xffff }

// LedgerAmt extracts the amount of a packed transfer record.
func LedgerAmt(v uint64) uint64 { return v & 0xffffffff }

// ErrReadYourWrites reports a transaction that could not observe its own
// (or its snapshot's) writes: an in-transaction assertion, so the bug is
// caught at the operation rather than at history validation.
var ErrReadYourWrites = errors.New("workload: transaction failed to observe its own writes")

// ErrConservation reports an audit transaction that saw account balances
// not summing to the invariant total.
var ErrConservation = errors.New("workload: account balances do not sum to the invariant total")

// Bank is the two-table bank schema on one Database.
type Bank struct {
	Accounts *core.Table
	Ledger   *core.Table
	// N is the account key space [0, N); account 0 is the reserve account
	// that open/close move money through and is never closed itself.
	N uint64
	// InitBalance is every account's starting balance; conservation checks
	// against N*InitBalance.
	InitBalance uint64
}

// OpenBank creates the bank schema: accounts with an ordered primary index
// (audits range-scan it) and the ledger with a hash primary index plus the
// ordered composite statement index. N must fit the 16-bit account field.
func OpenBank(db *core.Database, n, initBalance uint64) (*Bank, error) {
	if n < 2 || n > 1<<16 {
		return nil, fmt.Errorf("workload: bank needs 2..65536 accounts, got %d", n)
	}
	acc, err := db.CreateTable(core.TableSpec{
		Name:    BankAccountsTable,
		Indexes: []core.IndexSpec{{Name: "pk", Key: RowKey, Ordered: true}},
	})
	if err != nil {
		return nil, err
	}
	stmtKey := func(p []byte) uint64 {
		return BankStmtLayout.MustEncode(LedgerFrom(RowVal(p)), RowKey(p))
	}
	led, err := db.CreateTable(core.TableSpec{
		Name: BankLedgerTable,
		Indexes: []core.IndexSpec{
			{Name: "pk", Key: RowKey, Buckets: 4096},
			{Name: BankStmtIndex, Key: stmtKey, Ordered: true, Composite: BankStmtLayout},
		},
	})
	if err != nil {
		return nil, err
	}
	return &Bank{Accounts: acc, Ledger: led, N: n, InitBalance: initBalance}, nil
}

// Load populates the accounts through the load path (bypassing the log).
func (b *Bank) Load(db *core.Database) {
	for k := uint64(0); k < b.N; k++ {
		db.LoadRow(b.Accounts, Row(k, b.InitBalance))
	}
}

// LoadTx populates the accounts transactionally so the initial rows reach
// the log — required when the database will be crash-recovered.
func (b *Bank) LoadTx(db *core.Database) error {
	const chunk = 64
	for base := uint64(0); base < b.N; base += chunk {
		tx := db.Begin()
		for k := base; k < base+chunk && k < b.N; k++ {
			if err := tx.Insert(b.Accounts, Row(k, b.InitBalance)); err != nil {
				_ = tx.Abort() // the insert error is the root cause
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// InitialModel returns the checker's initial multi-table state matching
// Load/LoadTx.
func (b *Bank) InitialModel() map[string]map[uint64]uint64 {
	acc := make(map[uint64]uint64, b.N)
	for k := uint64(0); k < b.N; k++ {
		acc[k] = b.InitBalance
	}
	return map[string]map[uint64]uint64{
		BankAccountsTable: acc,
		BankLedgerTable:   {},
	}
}

// Indexers returns the checker index derivations for recorded bank
// histories: the statement index key of a ledger row.
func (b *Bank) Indexers() map[string]check.IndexKeyFn {
	return map[string]check.IndexKeyFn{
		BankStmtIndex: func(key, value uint64) (uint64, bool) {
			if key >= 1<<48 {
				return 0, false
			}
			return BankStmtLayout.MustEncode(LedgerFrom(value), key), true
		},
	}
}

// Constraints returns fresh instances of the bank's cross-table invariants
// (constraints are stateful; build a new set per History validation):
//
//   - bank-conservation: live balances always sum to N*InitBalance;
//   - ledger-from-account: every ledger row's source account exists;
//   - balanced-accounts: each transaction's account deltas sum to zero —
//     transfers move money, they never mint it.
func (b *Bank) Constraints() []check.Constraint {
	return []check.Constraint{
		check.NewConservation("bank-conservation", []string{BankAccountsTable},
			func(table string, key, value uint64) int64 { return int64(value) }),
		check.NewRefIntegrity("ledger-from-account", BankLedgerTable, BankAccountsTable,
			func(childKey, childValue uint64) (uint64, bool) { return LedgerFrom(childValue), true }),
		check.NewTxnRule("balanced-accounts", func(t *check.Txn, get check.Lookup) error {
			// Net delta of the transaction over the accounts table, using the
			// final write per key against the pre-transaction state.
			final := make(map[uint64]*check.Write)
			for i := range t.Writes {
				w := &t.Writes[i]
				if w.Table == BankAccountsTable {
					final[w.Key] = w
				}
			}
			var delta int64
			for key, w := range final {
				if old, ok := get(BankAccountsTable, key); ok {
					delta -= int64(old)
				}
				if w.Op != check.WriteDelete {
					delta += int64(w.Value)
				}
			}
			if delta != 0 {
				return fmt.Errorf("account deltas sum to %+d", delta)
			}
			return nil
		}),
	}
}

// RunTxn executes one randomly chosen bank transaction body against tx and
// returns its recorded footprint (EndTS unset — the caller stamps it from
// CommitTS). ledgerID must be globally unique (and < 2^48) per call; it is
// consumed only by transaction kinds that insert a ledger row.
//
// Engine errors (conflicts, lock timeouts, deadlock victims) propagate for
// the caller to abort and retry. Errors wrapping ErrReadYourWrites or
// ErrConservation are in-transaction invariant failures. They are evidence,
// not yet a verdict: an optimistic transaction's in-flight view is
// conditional on its speculative commit dependencies, and a dependency
// aborting mid-transaction exposes a mixed state until the abort cascade
// reaches the reader. The caller must let commit decide — a failed commit
// is an ordinary doomed-speculation abort; only a successful commit makes
// the invariant failure a real serializability violation.
func (b *Bank) RunTxn(tx *core.Tx, rng *rand.Rand, ledgerID uint64) (check.Txn, error) {
	switch r := rng.Uint64() % 100; {
	case r < 55:
		return b.transfer(tx, rng, ledgerID)
	case r < 75:
		return b.statement(tx, rng)
	case r < 85:
		return b.audit(tx)
	case r < 93:
		return b.openAccount(tx, rng, ledgerID)
	default:
		return b.closeAccount(tx, rng)
	}
}

// readAccount looks up one account and records the (value, found) read.
func (b *Bank) readAccount(tx *core.Tx, t *check.Txn, key uint64) (uint64, bool, error) {
	row, ok, err := tx.Lookup(b.Accounts, 0, key, nil)
	if err != nil {
		return 0, false, err
	}
	var v uint64
	if ok {
		v = RowVal(row.Payload())
	}
	t.Reads = append(t.Reads, check.Read{Table: BankAccountsTable, Key: key, Value: v, Found: ok})
	return v, ok, nil
}

// setAccount updates an account read as present earlier in the transaction
// and records the write; updating zero rows means the engine lost a row the
// transaction already observed.
func (b *Bank) setAccount(tx *core.Tx, t *check.Txn, key, val uint64) error {
	n, err := tx.UpdateWhere(b.Accounts, 0, key, nil, func(old []byte) []byte {
		return Row(key, val)
	})
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("%w: account %d read as present but updated 0 rows", ErrReadYourWrites, key)
	}
	t.Writes = append(t.Writes, check.Write{Table: BankAccountsTable, Key: key, Value: val})
	return nil
}

// transfer moves a random amount between two accounts and inserts the
// ledger record, then asserts the transaction sees its own debit and its
// own ledger row (cross-table read-your-writes).
func (b *Bank) transfer(tx *core.Tx, rng *rand.Rand, ledgerID uint64) (check.Txn, error) {
	var t check.Txn
	from := rng.Uint64() % b.N
	to := rng.Uint64() % b.N
	if from == to {
		to = (to + 1) % b.N
	}
	// Read in ascending key order to keep pessimistic lock acquisition
	// mostly ordered (deadlock victims abort and retry either way).
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	loBal, loOK, err := b.readAccount(tx, &t, lo)
	if err != nil {
		return t, err
	}
	hiBal, hiOK, err := b.readAccount(tx, &t, hi)
	if err != nil {
		return t, err
	}
	if !loOK || !hiOK {
		return t, nil // a leg is closed right now: no-op, absence reads recorded
	}
	fromBal, toBal := loBal, hiBal
	if from != lo {
		fromBal, toBal = hiBal, loBal
	}
	var amt uint64
	if fromBal > 0 {
		amt = rng.Uint64() % (fromBal + 1)
	}
	if amt > 1<<31 {
		amt = 1 << 31 // keep packed amounts inside the 32-bit ledger field
	}
	if err := b.setAccount(tx, &t, from, fromBal-amt); err != nil {
		return t, err
	}
	if err := b.setAccount(tx, &t, to, toBal+amt); err != nil {
		return t, err
	}
	lv := LedgerValue(from, to, amt)
	if err := tx.Insert(b.Ledger, Row(ledgerID, lv)); err != nil {
		return t, err
	}
	t.Writes = append(t.Writes, check.Write{Table: BankLedgerTable, Key: ledgerID, Value: lv})
	// Read-your-writes, across both tables. Not recorded: the checker's
	// model validates reads against pre-transaction state.
	row, ok, err := tx.Lookup(b.Accounts, 0, from, nil)
	if err != nil {
		return t, err
	}
	if !ok || RowVal(row.Payload()) != fromBal-amt {
		return t, fmt.Errorf("%w: debited account %d not visible in-transaction", ErrReadYourWrites, from)
	}
	lrow, ok, err := tx.Lookup(b.Ledger, 0, ledgerID, nil)
	if err != nil {
		return t, err
	}
	if !ok || RowVal(lrow.Payload()) != lv {
		return t, fmt.Errorf("%w: ledger row %d not visible in-transaction", ErrReadYourWrites, ledgerID)
	}
	return t, nil
}

// statement reads one account's ledger rows through the statement index,
// recording the prefix scan and each row.
func (b *Bank) statement(tx *core.Tx, rng *rand.Rand) (check.Txn, error) {
	var t check.Txn
	acct := rng.Uint64() % b.N
	lo, hi := BankStmtLayout.MustPrefixRange(acct)
	rr := check.RangeRead{Table: BankLedgerTable, Index: BankStmtIndex, Lo: lo, Hi: hi}
	err := tx.ScanPrefix(b.Ledger, 1, []uint64{acct}, nil, func(r core.Row) bool {
		p := r.Payload()
		id, v := RowKey(p), RowVal(p)
		rr.Keys = append(rr.Keys, BankStmtLayout.MustEncode(acct, id))
		t.Reads = append(t.Reads, check.Read{Table: BankLedgerTable, Key: id, Value: v, Found: true})
		return true
	})
	if err != nil {
		return t, err
	}
	t.RangeReads = append(t.RangeReads, rr)
	return t, nil
}

// audit range-scans every account, records the scan, and asserts
// conservation: a serializable snapshot sums to the invariant total unless
// the transaction is doomed (a speculative read's dependency aborted
// mid-scan), which the caller detects by the commit failing.
func (b *Bank) audit(tx *core.Tx) (check.Txn, error) {
	var t check.Txn
	rr := check.RangeRead{Table: BankAccountsTable, Lo: 0, Hi: b.N - 1}
	var sum uint64
	err := tx.ScanRange(b.Accounts, 0, 0, b.N-1, nil, func(r core.Row) bool {
		p := r.Payload()
		k, v := RowKey(p), RowVal(p)
		rr.Keys = append(rr.Keys, k)
		t.Reads = append(t.Reads, check.Read{Table: BankAccountsTable, Key: k, Value: v, Found: true})
		sum += v
		return true
	})
	if err != nil {
		return t, err
	}
	t.RangeReads = append(t.RangeReads, rr)
	if want := b.N * b.InitBalance; sum != want {
		return t, fmt.Errorf("%w: audit saw %d, want %d", ErrConservation, sum, want)
	}
	return t, nil
}

// openAccount re-opens a closed account, seeding it from the reserve
// account 0 and recording the seeding transfer in the ledger.
func (b *Bank) openAccount(tx *core.Tx, rng *rand.Rand, ledgerID uint64) (check.Txn, error) {
	var t check.Txn
	k := 1 + rng.Uint64()%(b.N-1)
	_, ok, err := b.readAccount(tx, &t, k)
	if err != nil {
		return t, err
	}
	if ok {
		return t, nil // already open: no-op, presence read recorded
	}
	reserve, ok, err := b.readAccount(tx, &t, 0)
	if err != nil {
		return t, err
	}
	if !ok {
		return t, fmt.Errorf("%w: reserve account 0 missing", ErrConservation)
	}
	var amt uint64
	if reserve > 0 {
		amt = rng.Uint64() % (reserve + 1)
	}
	if amt > 1<<31 {
		amt = 1 << 31
	}
	if err := b.setAccount(tx, &t, 0, reserve-amt); err != nil {
		return t, err
	}
	if err := tx.Insert(b.Accounts, Row(k, amt)); err != nil {
		return t, err
	}
	t.Writes = append(t.Writes, check.Write{Table: BankAccountsTable, Key: k, Value: amt})
	lv := LedgerValue(0, k, amt)
	if err := tx.Insert(b.Ledger, Row(ledgerID, lv)); err != nil {
		return t, err
	}
	t.Writes = append(t.Writes, check.Write{Table: BankLedgerTable, Key: ledgerID, Value: lv})
	row, ok, err := tx.Lookup(b.Accounts, 0, k, nil)
	if err != nil {
		return t, err
	}
	if !ok || RowVal(row.Payload()) != amt {
		return t, fmt.Errorf("%w: opened account %d not visible in-transaction", ErrReadYourWrites, k)
	}
	return t, nil
}

// closeAccount closes a non-reserve account: its ledger rows are removed
// (keeping referential integrity), its balance moves to the reserve, and
// the account row is deleted.
func (b *Bank) closeAccount(tx *core.Tx, rng *rand.Rand) (check.Txn, error) {
	var t check.Txn
	k := 1 + rng.Uint64()%(b.N-1)
	lo, hi := BankStmtLayout.MustPrefixRange(k)
	rr := check.RangeRead{Table: BankLedgerTable, Index: BankStmtIndex, Lo: lo, Hi: hi}
	var rows []core.Row
	var ids []uint64
	err := tx.ScanPrefix(b.Ledger, 1, []uint64{k}, nil, func(r core.Row) bool {
		p := r.Payload()
		id, v := RowKey(p), RowVal(p)
		rr.Keys = append(rr.Keys, BankStmtLayout.MustEncode(k, id))
		t.Reads = append(t.Reads, check.Read{Table: BankLedgerTable, Key: id, Value: v, Found: true})
		rows = append(rows, r)
		ids = append(ids, id)
		return true
	})
	if err != nil {
		return t, err
	}
	t.RangeReads = append(t.RangeReads, rr)
	bal, ok, err := b.readAccount(tx, &t, k)
	if err != nil {
		return t, err
	}
	if !ok {
		return t, nil // already closed: no-op, the scan and absence read stand
	}
	reserve, ok, err := b.readAccount(tx, &t, 0)
	if err != nil {
		return t, err
	}
	if !ok {
		return t, fmt.Errorf("%w: reserve account 0 missing", ErrConservation)
	}
	for i, r := range rows {
		if err := tx.Delete(b.Ledger, r); err != nil {
			return t, err
		}
		t.Writes = append(t.Writes, check.Write{Table: BankLedgerTable, Op: check.WriteDelete, Key: ids[i]})
	}
	if err := b.setAccount(tx, &t, 0, reserve+bal); err != nil {
		return t, err
	}
	n, err := tx.DeleteWhere(b.Accounts, 0, k, nil)
	if err != nil {
		return t, err
	}
	if n == 0 {
		return t, fmt.Errorf("%w: account %d read as present but deleted 0 rows", ErrReadYourWrites, k)
	}
	t.Writes = append(t.Writes, check.Write{Table: BankAccountsTable, Op: check.WriteDelete, Key: k})
	return t, nil
}
