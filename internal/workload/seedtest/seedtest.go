// Package seedtest is the one place randomized tests get their seeds.
//
// Every randomized suite derives its generators from Base, which logs the
// seed in effect and honours a shared -seed flag, so any seeded failure in
// CI output comes with the exact command that replays it:
//
//	go test -run 'TestName' ./internal/pkg -seed 12345
//
// The package imports only the standard library so in-package tests of any
// layer (core, storage, recovery) can use it without import cycles.
package seedtest

import (
	"flag"
	"testing"
)

var seedFlag = flag.Int64("seed", 0, "override the base seed of randomized tests (0 = each test's default)")

// Base returns the base seed a randomized test should build its generators
// from: the -seed flag if set, otherwise def. It logs the seed and the
// re-run command, so every seeded failure is reproducible from the test
// output alone.
func Base(tb testing.TB, def int64) int64 {
	tb.Helper()
	seed := def
	if *seedFlag != 0 {
		seed = *seedFlag
	}
	tb.Logf("seed %d (replay: go test -run '%s' -seed %d)", seed, tb.Name(), seed)
	return seed
}

// Derive splits a base seed into the i-th stream seed with a splitmix64
// step, so workers and iterations get decorrelated generators that are
// still a pure function of (base, i).
func Derive(base int64, i int) int64 {
	x := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}
