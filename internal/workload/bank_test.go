package workload_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/workload"
	"repro/internal/workload/seedtest"
)

var bankSchemes = []core.Scheme{core.SingleVersion, core.MVPessimistic, core.MVOptimistic}

// runBankHistory executes a single-stream bank workload under serializable
// isolation and returns the bank plus the recorded committed history (every
// transaction carries a marker write so all engines stamp it).
func runBankHistory(t *testing.T, scheme core.Scheme, seed int64, txns int) (*workload.Bank, []check.Txn, uint64) {
	t.Helper()
	db, err := core.Open(core.Config{Scheme: scheme, LockTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	bank, err := workload.OpenBank(db, 48, 1000)
	if err != nil {
		t.Fatal(err)
	}
	marks, err := db.CreateTable(core.TableSpec{
		Name:    "marks",
		Indexes: []core.IndexSpec{{Name: "pk", Key: workload.RowKey, Buckets: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	bank.Load(db)

	rng := rand.New(rand.NewSource(seed))
	var hist []check.Txn
	var maxEnd uint64
	for i := 0; i < txns; i++ {
		id := uint64(1)<<40 | uint64(i)
		tx := db.Begin(core.WithIsolation(core.Serializable))
		ft, err := bank.RunTxn(tx, rng, id)
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		if err := tx.Insert(marks, workload.Row(id, 1)); err != nil {
			t.Fatalf("txn %d marker: %v", i, err)
		}
		ft.Writes = append(ft.Writes, check.Write{Table: "marks", Key: id, Value: 1})
		end, err := tx.CommitTS()
		if err != nil {
			t.Fatalf("txn %d commit: %v", i, err)
		}
		if end == 0 {
			t.Fatalf("txn %d: zero stamp for a writer transaction", i)
		}
		ft.EndTS = end
		if end > maxEnd {
			maxEnd = end
		}
		hist = append(hist, ft)
	}
	return bank, hist, maxEnd
}

func bankHistoryOf(b *workload.Bank, hist []check.Txn, constraints []check.Constraint) *check.History {
	initial := b.InitialModel()
	initial["marks"] = map[uint64]uint64{}
	return &check.History{
		Initial:     initial,
		Txns:        hist,
		Indexers:    b.Indexers(),
		Constraints: constraints,
	}
}

// TestBankWorkloadSerializable: the recorded bank history on every engine
// validates cleanly under all cross-table constraints, on both checker
// paths.
func TestBankWorkloadSerializable(t *testing.T) {
	for _, scheme := range bankSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			seed := seedtest.Base(t, 4242)
			bank, hist, _ := runBankHistory(t, scheme, seed, 120)
			if err := bankHistoryOf(bank, hist, bank.Constraints()).Validate(); err != nil {
				t.Fatalf("bank history not serializable: %v", err)
			}
			if err := bankHistoryOf(bank, hist, bank.Constraints()).ValidateRebuild(); err != nil {
				t.Fatalf("rebuild checker disagrees: %v", err)
			}
		})
	}
}

// TestBankConstraintsFire is the seeded-violation proof for every
// cross-table constraint class on every engine: a genuine recorded history
// is extended with one tampering transaction past its last timestamp, and
// exactly the targeted constraint must reject it.
func TestBankConstraintsFire(t *testing.T) {
	for _, scheme := range bankSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			seed := seedtest.Base(t, 99)
			bank, hist, maxEnd := runBankHistory(t, scheme, seed, 60)
			classes := []struct {
				name   string
				pick   string // constraint Name() to attach
				tamper check.Txn
			}{
				{
					name: "conservation",
					pick: "bank-conservation",
					// Mint money: rewrite account 1 to an impossible balance.
					tamper: check.Txn{EndTS: maxEnd + 1, Writes: []check.Write{
						{Table: workload.BankAccountsTable, Key: 1, Value: 1 << 40},
					}},
				},
				{
					name: "ref-integrity",
					pick: "ledger-from-account",
					// A ledger row whose source account never existed.
					tamper: check.Txn{EndTS: maxEnd + 1, Writes: []check.Write{
						{Table: workload.BankLedgerTable, Key: 1 << 39, Value: workload.LedgerValue(49, 0, 1)},
					}},
				},
				{
					name: "txn-rule",
					pick: "balanced-accounts",
					// An unbalanced accounts write: deltas cannot sum to zero.
					tamper: check.Txn{EndTS: maxEnd + 1, Writes: []check.Write{
						{Table: workload.BankAccountsTable, Key: 1, Value: 1 << 40},
					}},
				},
			}
			for _, c := range classes {
				var picked []check.Constraint
				for _, ctr := range bank.Constraints() {
					if ctr.Name() == c.pick {
						picked = append(picked, ctr)
					}
				}
				if len(picked) != 1 {
					t.Fatalf("%s: constraint %q not found", c.name, c.pick)
				}
				tampered := append(append([]check.Txn{}, hist...), c.tamper)
				err := bankHistoryOf(bank, tampered, picked).Validate()
				cv, ok := err.(*check.ConstraintViolation)
				if !ok || cv.Constraint != c.pick {
					t.Fatalf("%s: want ConstraintViolation(%s), got %v", c.name, c.pick, err)
				}
				// And verdict-for-verdict agreement with the reference path.
				var again []check.Constraint
				for _, ctr := range bank.Constraints() {
					if ctr.Name() == c.pick {
						again = append(again, ctr)
					}
				}
				slow := bankHistoryOf(bank, tampered, again).ValidateRebuild()
				if slow == nil || slow.Error() != err.Error() {
					t.Fatalf("%s: checkers disagree:\n fast: %v\n slow: %v", c.name, err, slow)
				}
			}
		})
	}
}

// TestBankPhantomDetected: a recorded statement scan that misses a
// committed ledger row is rejected as a range violation on every engine —
// the multi-table phantom proof.
func TestBankPhantomDetected(t *testing.T) {
	for _, scheme := range bankSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			seed := seedtest.Base(t, 7)
			bank, hist, _ := runBankHistory(t, scheme, seed, 120)
			tampered := append([]check.Txn{}, hist...)
			dropped := false
			for i := range tampered {
				for j := range tampered[i].RangeReads {
					rr := &tampered[i].RangeReads[j]
					if rr.Index == workload.BankStmtIndex && len(rr.Keys) > 0 {
						rr.Keys = rr.Keys[:len(rr.Keys)-1]
						dropped = true
						break
					}
				}
				if dropped {
					break
				}
			}
			if !dropped {
				t.Skip("history recorded no non-empty statement scan at this seed")
			}
			err := bankHistoryOf(bank, tampered, nil).Validate()
			if _, ok := err.(*check.RangeViolation); !ok {
				t.Fatalf("want RangeViolation for dropped scan row, got %v", err)
			}
		})
	}
}
