package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestRowCodec(t *testing.T) {
	f := func(key, val uint64) bool {
		p := Row(key, val)
		return len(p) == RowSize && RowKey(p) == key && RowVal(p) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Uniform{N: 100}
	for i := 0; i < 10000; i++ {
		if k := d.Next(rng); k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestUniformCoversSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Uniform{N: 16}
	seen := make(map[uint64]int)
	for i := 0; i < 16000; i++ {
		seen[d.Next(rng)]++
	}
	for k := uint64(0); k < 16; k++ {
		if seen[k] < 500 {
			t.Fatalf("key %d drawn only %d times", k, seen[k])
		}
	}
}

func TestNURandSkewAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 100_000
	d := NewNURand(n)
	if d.A != 65_535 {
		t.Fatalf("A = %d for N=%d", d.A, n)
	}
	counts := make(map[uint64]int)
	const draws = 200_000
	for i := 0; i < draws; i++ {
		k := d.Next(rng)
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// The OR construction skews towards keys with many set bits; verify the
	// distribution is materially non-uniform: the hottest key should be
	// drawn far more often than the uniform expectation.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniformExpect := draws / n
	if max < uniformExpect*10 {
		t.Fatalf("hottest key drawn %d times; expected skew over uniform %d", max, uniformExpect)
	}
}

func TestNURandATiers(t *testing.T) {
	if NewNURand(1_000_000).A != 65_535 {
		t.Fatal("tier 1 A wrong")
	}
	if NewNURand(10_000_000).A != 1_048_575 {
		t.Fatal("tier 2 A wrong")
	}
	if NewNURand(20_000_000).A != 2_097_151 {
		t.Fatal("tier 3 A wrong")
	}
}

func TestHomogeneousRunCounts(t *testing.T) {
	db, err := core.Open(core.Config{Scheme: core.MVOptimistic})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := Table(db, 1000)
	if err != nil {
		t.Fatal(err)
	}
	Load(db, tbl, 1000)
	h := Homogeneous{Table: tbl, Dist: Uniform{N: 1000}, R: 10, W: 2}
	rng := rand.New(rand.NewSource(7))
	tx := db.Begin()
	reads, err := h.Run(tx, rng)
	if err != nil {
		t.Fatal(err)
	}
	if reads != 10 {
		t.Fatalf("reads = %d, want 10", reads)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestLongReaderWraps(t *testing.T) {
	db, err := core.Open(core.Config{Scheme: core.MVOptimistic})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := Table(db, 100)
	if err != nil {
		t.Fatal(err)
	}
	Load(db, tbl, 100)
	lr := LongReader{Table: tbl, N: 100, Rows: 100}
	rng := rand.New(rand.NewSource(3))
	tx := db.Begin(core.WithIsolation(core.SnapshotIsolation))
	reads, err := lr.Run(tx, rng)
	if err != nil {
		t.Fatal(err)
	}
	if reads != 100 {
		t.Fatalf("reads = %d, want 100 (every row once)", reads)
	}
	tx.Commit()
}

func TestSecondaryMixRunCounts(t *testing.T) {
	const (
		rows   = 1000
		groups = 10
	)
	for _, scheme := range []core.Scheme{core.MVOptimistic, core.MVPessimistic, core.SingleVersion} {
		db, err := core.Open(core.Config{Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := SecondaryTable(db, rows, groups)
		if err != nil {
			t.Fatal(err)
		}
		Load(db, tbl, rows)
		m := SecondaryMix{Table: tbl, Dist: Uniform{N: rows}, N: rows, Groups: groups, Scans: 2, W: 2}
		rng := rand.New(rand.NewSource(11))
		tx := db.Begin()
		reads, err := m.Run(tx, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Initial load: value = key, so each group holds exactly rows/groups
		// rows and two prefix scans read two full groups.
		if reads != 2*rows/groups {
			t.Fatalf("%v: reads = %d, want %d", scheme, reads, 2*rows/groups)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		// The two updates migrated rows: total across groups is unchanged.
		tx = db.Begin()
		total := 0
		if err := tx.ScanRange(tbl, 1, 0, ^uint64(0), nil, func(core.Row) bool {
			total++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if total != rows {
			t.Fatalf("%v: secondary index holds %d rows, want %d", scheme, total, rows)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		db.Close()
	}
}
