// Package repro's root benchmarks regenerate the paper's evaluation as Go
// testing.B benchmarks — one benchmark per table and figure of Section 5,
// plus ablation benchmarks for the design choices called out in DESIGN.md.
//
//	go test -bench=. -benchmem
//
// Each benchmark reports tx/s (or rows/s for Figure 9) via ReportMetric.
// The cmd/mvbench tool runs the same experiments with the paper's exact
// sweep axes; these benchmarks pin one representative point per axis so the
// full suite stays fast.
package repro

import (
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/tatp"
	"repro/internal/workload"
)

const (
	benchRowsLarge = 50_000 // stands in for the paper's 10M-row table
	benchRowsSmall = 1_000  // the paper's hotspot table size
	benchSubs      = 2_000  // TATP population for the benchmark
)

var benchSchemes = []struct {
	name   string
	scheme core.Scheme
}{
	{"1V", core.SingleVersion},
	{"MVL", core.MVPessimistic},
	{"MVO", core.MVOptimistic},
}

func openBench(b *testing.B, scheme core.Scheme, rows uint64) (*core.Database, *core.Table) {
	b.Helper()
	db, err := core.Open(core.Config{Scheme: scheme, LogSink: io.Discard, LockTimeout: 10 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := workload.Table(db, rows)
	if err != nil {
		b.Fatal(err)
	}
	workload.Load(db, tbl, rows)
	b.Cleanup(func() { db.Close() })
	return db, tbl
}

// runMix executes b.N transactions of the workload across parallel workers,
// reporting committed transactions per second. Aborted transactions are
// retried (they are part of the scheme's cost).
func runMix(b *testing.B, db *core.Database, level core.Isolation, fn bench.TxFn) {
	b.Helper()
	var seed atomic.Int64
	b.SetParallelism(4) // a few concurrent transactions even on one core
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1) * 7919))
		for pb.Next() {
			for {
				tx := db.Begin(core.WithIsolation(level))
				if _, err := fn(tx, rng); err != nil {
					tx.Abort()
					continue
				}
				if tx.Commit() == nil {
					break
				}
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
}

// BenchmarkFig4 — scalability under low contention: the R=10, W=2
// transaction on the large table at Read Committed (Figure 4's workload;
// parallelism follows GOMAXPROCS).
func BenchmarkFig4(b *testing.B) {
	for _, s := range benchSchemes {
		b.Run(s.name, func(b *testing.B) {
			db, tbl := openBench(b, s.scheme, benchRowsLarge)
			h := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: benchRowsLarge}, R: 10, W: 2}
			runMix(b, db, core.ReadCommitted, h.Run)
		})
	}
}

// BenchmarkCommitStorm — the smallest possible write transaction (one
// update, no reads) committed as fast as possible, the worst case for the
// shared timestamp oracle. Parallelism follows GOMAXPROCS: RunParallel
// starts 2 workers per P, so raising GOMAXPROCS raises the number of
// concurrent committers and the combining funnel starts batching their
// oracle draws. Reports draws/commit — physical fetch-and-adds on the shared
// end-timestamp counter per committed transaction (MV batch begins amortize
// the begin-side draw; combining shrinks the end side below 1 under load).
func BenchmarkCommitStorm(b *testing.B) {
	for _, s := range benchSchemes {
		b.Run(s.name, func(b *testing.B) {
			db, tbl := openBench(b, s.scheme, benchRowsLarge)
			h := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: benchRowsLarge}, R: 0, W: 1}
			f0 := db.FunnelStats()
			c0 := db.Stats().Commits
			var seed atomic.Int64
			b.SetParallelism(2)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seed.Add(1) * 7919))
				batch := db.BeginBatch(256, core.WithIsolation(core.ReadCommitted))
				defer batch.Close()
				for pb.Next() {
					for {
						tx := batch.Begin()
						if _, err := h.Run(tx, rng); err != nil {
							tx.Abort()
							continue
						}
						if tx.Commit() == nil {
							break
						}
					}
				}
			})
			b.StopTimer()
			f1 := db.FunnelStats()
			if dc := db.Stats().Commits - c0; dc > 0 {
				b.ReportMetric(float64(f1.Physical-f0.Physical)/float64(dc), "draws/commit")
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
		})
	}
}

// BenchmarkRangeScan — the range-heavy workload on an ordered primary
// index: 4 range scans of 100 consecutive rows plus 2 point updates per
// transaction. No counterpart in the paper (its prototype had only hash
// indexes); this anchors the ordered access method's regression trajectory.
func BenchmarkRangeScan(b *testing.B) {
	for _, s := range benchSchemes {
		b.Run(s.name, func(b *testing.B) {
			db, err := core.Open(core.Config{Scheme: s.scheme, LogSink: io.Discard, LockTimeout: 10 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			tbl, err := workload.OrderedTable(db, benchRowsLarge)
			if err != nil {
				b.Fatal(err)
			}
			workload.Load(db, tbl, benchRowsLarge)
			b.Cleanup(func() { db.Close() })
			rm := workload.RangeMix{
				Table: tbl, Dist: workload.Uniform{N: benchRowsLarge}, N: benchRowsLarge,
				Scans: 4, Span: 100, W: 2,
			}
			runMix(b, db, core.ReadCommitted, rm.Run)
		})
	}
}

// BenchmarkFig5 — the same workload on the 1,000-row hotspot (Figure 5).
func BenchmarkFig5(b *testing.B) {
	for _, s := range benchSchemes {
		b.Run(s.name, func(b *testing.B) {
			db, tbl := openBench(b, s.scheme, benchRowsSmall)
			h := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: benchRowsSmall}, R: 10, W: 2}
			runMix(b, db, core.ReadCommitted, h.Run)
		})
	}
}

// BenchmarkTable3 — the update workload at each isolation level (Table 3).
func BenchmarkTable3(b *testing.B) {
	levels := []struct {
		name  string
		level core.Isolation
	}{
		{"ReadCommitted", core.ReadCommitted},
		{"RepeatableRead", core.RepeatableRead},
		{"Serializable", core.Serializable},
	}
	for _, s := range benchSchemes {
		for _, l := range levels {
			b.Run(s.name+"/"+l.name, func(b *testing.B) {
				db, tbl := openBench(b, s.scheme, benchRowsLarge)
				h := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: benchRowsLarge}, R: 10, W: 2}
				runMix(b, db, l.level, h.Run)
			})
		}
	}
}

// BenchmarkFig6 — mixed update and short read-only transactions under low
// contention at a 50% read ratio (one point of Figure 6's sweep; mvbench
// runs the full axis).
func BenchmarkFig6(b *testing.B) {
	for _, s := range benchSchemes {
		b.Run(s.name, func(b *testing.B) {
			db, tbl := openBench(b, s.scheme, benchRowsLarge)
			up := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: benchRowsLarge}, R: 10, W: 2}
			rd := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: benchRowsLarge}, R: 10, W: 0}
			i := 0
			runMix(b, db, core.ReadCommitted, func(tx *core.Tx, rng *rand.Rand) (int, error) {
				i++
				if i%2 == 0 {
					return rd.Run(tx, rng)
				}
				return up.Run(tx, rng)
			})
		})
	}
}

// BenchmarkFig7 — the same mix on the hotspot table (Figure 7).
func BenchmarkFig7(b *testing.B) {
	for _, s := range benchSchemes {
		b.Run(s.name, func(b *testing.B) {
			db, tbl := openBench(b, s.scheme, benchRowsSmall)
			up := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: benchRowsSmall}, R: 10, W: 2}
			rd := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: benchRowsSmall}, R: 10, W: 0}
			i := 0
			runMix(b, db, core.ReadCommitted, func(tx *core.Tx, rng *rand.Rand) (int, error) {
				i++
				if i%2 == 0 {
					return rd.Run(tx, rng)
				}
				return up.Run(tx, rng)
			})
		})
	}
}

// BenchmarkFig8 — update throughput while one long, transactionally
// consistent read-only transaction repeatedly scans 10% of the table
// (Figure 8 at x=1). The 1V numbers collapse; that is the result.
func BenchmarkFig8(b *testing.B) {
	for _, s := range benchSchemes {
		b.Run(s.name, func(b *testing.B) {
			db, tbl := openBench(b, s.scheme, benchRowsLarge)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				lr := workload.LongReader{Table: tbl, N: benchRowsLarge, Rows: benchRowsLarge / 10}
				rng := rand.New(rand.NewSource(99))
				for {
					select {
					case <-stop:
						return
					default:
					}
					tx := db.Begin(core.WithIsolation(core.SnapshotIsolation))
					if _, err := lr.Run(tx, rng); err != nil {
						tx.Abort()
						continue
					}
					_ = tx.Commit()
				}
			}()
			h := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: benchRowsLarge}, R: 10, W: 2}
			runMix(b, db, core.ReadCommitted, h.Run)
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkFig9 — read throughput of the long reader while updates run in
// the background (Figure 9). Reports rows read per second.
func BenchmarkFig9(b *testing.B) {
	for _, s := range benchSchemes {
		b.Run(s.name, func(b *testing.B) {
			db, tbl := openBench(b, s.scheme, benchRowsLarge)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: benchRowsLarge}, R: 10, W: 2}
					rng := rand.New(rand.NewSource(int64(w)))
					for {
						select {
						case <-stop:
							return
						default:
						}
						tx := db.Begin()
						if _, err := h.Run(tx, rng); err != nil {
							tx.Abort()
							continue
						}
						_ = tx.Commit()
					}
				}(w)
			}
			lr := workload.LongReader{Table: tbl, N: benchRowsLarge, Rows: benchRowsLarge / 10}
			rng := rand.New(rand.NewSource(7))
			rows := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for {
					tx := db.Begin(core.WithIsolation(core.SnapshotIsolation))
					n, err := lr.Run(tx, rng)
					if err != nil {
						tx.Abort()
						continue
					}
					if tx.Commit() == nil {
						rows += n
						break
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "rows/s")
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkTable4 — the TATP mix (Table 4).
func BenchmarkTable4(b *testing.B) {
	for _, s := range benchSchemes {
		b.Run(s.name, func(b *testing.B) {
			db, err := core.Open(core.Config{Scheme: s.scheme, LogSink: io.Discard})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { db.Close() })
			td, err := tatp.CreateTables(db, benchSubs)
			if err != nil {
				b.Fatal(err)
			}
			td.Load(1)
			mix := td.Mix(core.ReadCommitted)
			total := 0
			for _, m := range mix {
				total += m.Weight
			}
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seed.Add(1) * 104729))
				for pb.Next() {
					w := rng.Intn(total)
					var fn bench.TxFn
					for _, m := range mix {
						w -= m.Weight
						if w < 0 {
							fn = m.Fn
							break
						}
					}
					// TATP counts failed transactions (e.g. insert of an
					// existing row) without retrying them.
					tx := db.Begin(core.WithIsolation(core.ReadCommitted))
					if _, err := fn(tx, rng); err != nil {
						tx.Abort()
						continue
					}
					_ = tx.Commit()
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
		})
	}
}

// BenchmarkAblationSpeculation — MV/O on the hotspot with and without
// speculative reads/ignores (commit dependencies). Without speculation,
// encountering a preparing writer aborts the reader.
func BenchmarkAblationSpeculation(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"Speculative", false}, {"NoSpeculation", true}} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := core.Open(core.Config{
				Scheme:             core.MVOptimistic,
				DisableSpeculation: mode.disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { db.Close() })
			tbl, err := workload.Table(db, benchRowsSmall)
			if err != nil {
				b.Fatal(err)
			}
			workload.Load(db, tbl, benchRowsSmall)
			h := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: benchRowsSmall}, R: 10, W: 2}
			runMix(b, db, core.ReadCommitted, h.Run)
		})
	}
}

// BenchmarkAblationEagerUpdates — MV/L at repeatable read with and without
// eager updates (Section 4.2's motivation): when disabled, updating a
// read-locked version aborts the writer instead of installing a wait-for
// dependency.
func BenchmarkAblationEagerUpdates(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"Eager", false}, {"AbortOnLock", true}} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := core.Open(core.Config{
				Scheme:              core.MVPessimistic,
				DisableEagerUpdates: mode.disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { db.Close() })
			tbl, err := workload.Table(db, benchRowsSmall)
			if err != nil {
				b.Fatal(err)
			}
			workload.Load(db, tbl, benchRowsSmall)
			h := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: benchRowsSmall}, R: 10, W: 2}
			runMix(b, db, core.RepeatableRead, h.Run)
		})
	}
}

// BenchmarkAblationGC — MV/O update workload with cooperative garbage
// collection on vs off; without GC, version chains grow and scans slow
// down.
func BenchmarkAblationGC(b *testing.B) {
	for _, mode := range []struct {
		name    string
		gcEvery int
	}{{"GC", 0 /* default */}, {"NoGC", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := core.Open(core.Config{Scheme: core.MVOptimistic, GCEvery: mode.gcEvery})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { db.Close() })
			tbl, err := workload.Table(db, benchRowsSmall)
			if err != nil {
				b.Fatal(err)
			}
			workload.Load(db, tbl, benchRowsSmall)
			h := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: benchRowsSmall}, R: 2, W: 2}
			runMix(b, db, core.ReadCommitted, h.Run)
		})
	}
}

// BenchmarkWALGroupCommit — group-commit batch size sweep for the redo log.
func BenchmarkWALGroupCommit(b *testing.B) {
	for _, batch := range []int{1, 64, 1024} {
		b.Run(map[int]string{1: "Batch1", 64: "Batch64", 1024: "Batch1024"}[batch], func(b *testing.B) {
			db, err := core.Open(core.Config{
				Scheme:   core.MVOptimistic,
				LogSink:  io.Discard,
				LogBatch: batch,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { db.Close() })
			tbl, err := workload.Table(db, benchRowsSmall)
			if err != nil {
				b.Fatal(err)
			}
			workload.Load(db, tbl, benchRowsSmall)
			h := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: benchRowsSmall}, R: 0, W: 2}
			runMix(b, db, core.ReadCommitted, h.Run)
		})
	}
}
