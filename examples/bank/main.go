// Bank: the paper's Figure 1 scenario at scale — concurrent transfers
// between accounts, exactly the workload where serializability matters.
// Transfers run for a fixed interval under each of the three schemes while
// a transactionally consistent audit reader repeatedly sums every balance.
// The invariant (total balance constant) is verified on every audit scan
// and at the end.
//
// The printed throughputs show the paper's Section 5.2.2 effect: on the MV
// engines the audit reads a snapshot and the writers barely notice it; on
// the 1V engine the audit's read locks and the writers' exclusive locks
// collide, and both sides slow down.
//
// Transfers update the two accounts in canonical id order — the classic
// application-level discipline that avoids most lock deadlocks in the 1V
// engine (remaining conflicts are broken by its lock timeouts).
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

const (
	accounts       = 1000
	initialBalance = int64(1_000)
	workers        = 4
	runFor         = 2 * time.Second
)

func row(id uint64, balance int64) []byte {
	p := make([]byte, 16)
	binary.LittleEndian.PutUint64(p, id)
	binary.LittleEndian.PutUint64(p[8:], uint64(balance))
	return p
}

func id(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }
func balance(p []byte) int64 {
	return int64(binary.LittleEndian.Uint64(p[8:]))
}

func run(scheme core.Scheme) {
	db, err := core.Open(core.Config{Scheme: scheme, LockTimeout: 5 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(core.TableSpec{
		Name:    "accounts",
		Indexes: []core.IndexSpec{{Name: "id", Key: id, Buckets: accounts * 2}},
	})
	if err != nil {
		log.Fatal(err)
	}
	for a := uint64(0); a < accounts; a++ {
		db.LoadRow(tbl, row(a, initialBalance))
	}

	var committed, aborted, audits atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// The consistent audit reader. Snapshot isolation gives it a
	// transaction-consistent view; on 1V that degrades to repeatable read
	// with locks held to commit.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := db.Begin(core.WithIsolation(core.SnapshotIsolation))
			var total int64
			okRun := true
			for a := uint64(0); a < accounts; a++ {
				r, found, err := tx.Lookup(tbl, 0, a, nil)
				if err != nil || !found {
					okRun = false
					break
				}
				total += balance(r.Payload())
			}
			if !okRun {
				_ = tx.Abort()
				continue
			}
			if tx.Commit() != nil {
				continue
			}
			if total != int64(accounts)*initialBalance {
				log.Fatalf("AUDIT FAILURE: total %d != %d", total, int64(accounts)*initialBalance)
			}
			audits.Add(1)
			time.Sleep(5 * time.Millisecond) // let writers breathe between audits
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				from := rng.Uint64() % accounts
				to := rng.Uint64() % accounts
				if from == to {
					continue
				}
				amount := int64(rng.Uint64()%10 + 1)
				tx := db.Begin(core.WithIsolation(core.Serializable))
				if transfer(tx, tbl, from, to, amount) && tx.Commit() == nil {
					committed.Add(1)
				} else {
					aborted.Add(1)
				}
			}
		}(w)
	}

	time.Sleep(runFor)
	close(stop)
	wg.Wait()

	// Final invariant check.
	tx := db.Begin(core.WithIsolation(core.Serializable))
	var total int64
	for a := uint64(0); a < accounts; a++ {
		r, _, err := tx.Lookup(tbl, 0, a, nil)
		if err != nil {
			log.Fatal(err)
		}
		total += balance(r.Payload())
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	status := "OK"
	if total != int64(accounts)*initialBalance {
		status = "VIOLATED"
	}
	secs := runFor.Seconds()
	fmt.Printf("  %8.0f transfers/sec, %6.0f aborts/sec, %5.1f audit scans/sec, invariant %s (total=%d)\n",
		float64(committed.Load())/secs, float64(aborted.Load())/secs,
		float64(audits.Load())/secs, status, total)
}

// transfer applies ±amount to the two accounts, touching them in id order.
// A false return means a conflict; the transaction has been aborted.
func transfer(tx *core.Tx, tbl *core.Table, from, to uint64, amount int64) bool {
	type step struct {
		acct  uint64
		delta int64
	}
	steps := []step{{from, -amount}, {to, amount}}
	if to < from {
		steps[0], steps[1] = steps[1], steps[0]
	}
	for _, s := range steps {
		n, err := tx.UpdateWhere(tbl, 0, s.acct, nil, func(old []byte) []byte {
			return row(s.acct, balance(old)+s.delta)
		})
		if err != nil || n != 1 {
			_ = tx.Abort()
			return false
		}
	}
	return true
}

func main() {
	for _, scheme := range []core.Scheme{core.SingleVersion, core.MVPessimistic, core.MVOptimistic} {
		fmt.Printf("%s:\n", scheme)
		run(scheme)
	}
}
