// Reporting: operational reporting on a live OLTP system — the Section
// 5.2.2 motivation. A stream of short update transactions runs while a
// long, transactionally consistent reporting query repeatedly scans 10% of
// the table. On the multiversion engines the reporting query reads a
// snapshot and barely affects update throughput; on the single-version
// engine its read locks stall the updaters (compare the printed
// throughputs).
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

const (
	rows       = 100_000
	scanShare  = 10 // the reporting query touches rows/scanShare rows
	updaters   = 6
	reporters  = 2
	runSeconds = 2
)

func row(key, val uint64) []byte {
	p := make([]byte, 24)
	binary.LittleEndian.PutUint64(p, key)
	binary.LittleEndian.PutUint64(p[8:], val)
	return p
}
func key(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }

func run(scheme core.Scheme) {
	db, err := core.Open(core.Config{Scheme: scheme})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(core.TableSpec{
		Name:    "events",
		Indexes: []core.IndexSpec{{Name: "id", Key: key, Buckets: rows}},
	})
	if err != nil {
		log.Fatal(err)
	}
	for k := uint64(0); k < rows; k++ {
		db.LoadRow(tbl, row(k, 0))
	}

	var updates, reports atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < updaters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := db.Begin()
				k := rng.Uint64() % rows
				if _, err := tx.UpdateWhere(tbl, 0, k, nil, func(old []byte) []byte {
					return row(k, rng.Uint64())
				}); err != nil {
					_ = tx.Abort()
					continue
				}
				if tx.Commit() == nil {
					updates.Add(1)
				}
			}
		}(w)
	}

	for w := 0; w < reporters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// A transactionally consistent reporting query. Read-only
				// transactions get a consistent view most cheaply under
				// snapshot isolation (paper Section 3.4), which is
				// serializable for read-only work. On the MV engines this
				// takes the registration-free fast lane (no timestamp draw,
				// no transaction-table entry); 1V falls back to a locking
				// transaction with writes rejected.
				tx := db.BeginReadOnly()
				start := rng.Uint64() % rows
				failed := false
				for i := uint64(0); i < rows/scanShare; i++ {
					k := (start + i) % rows
					if err := tx.Scan(tbl, 0, k, nil, func(core.Row) bool { return true }); err != nil {
						failed = true
						break
					}
				}
				if failed {
					_ = tx.Abort()
					continue
				}
				if tx.Commit() == nil {
					reports.Add(1)
				}
			}
		}(w)
	}

	time.Sleep(runSeconds * time.Second)
	close(stop)
	wg.Wait()
	fmt.Printf("  %8.0f updates/sec alongside %.1f reporting scans/sec\n",
		float64(updates.Load())/runSeconds, float64(reports.Load())/runSeconds)
}

func main() {
	fmt.Printf("%d-row table; %d updaters + %d reporters scanning %d%% each pass\n",
		rows, updaters, reporters, 100/scanShare)
	for _, scheme := range []core.Scheme{core.SingleVersion, core.MVPessimistic, core.MVOptimistic} {
		fmt.Printf("%s:\n", scheme)
		run(scheme)
	}
}
