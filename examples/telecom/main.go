// Telecom: a TATP-style telecommunications application (Section 5.3) built
// on the public API — subscribers with access records, special facilities
// and call-forwarding rules, exercised by a realistic mix of short
// transactions while reporting live throughput per transaction type.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/tatp"
)

func main() {
	schemeName := flag.String("scheme", "mvo", "1v|mvl|mvo")
	subscribers := flag.Uint64("subscribers", 20_000, "population")
	seconds := flag.Int("seconds", 2, "measured seconds")
	flag.Parse()

	var scheme core.Scheme
	switch *schemeName {
	case "1v":
		scheme = core.SingleVersion
	case "mvl":
		scheme = core.MVPessimistic
	default:
		scheme = core.MVOptimistic
	}

	db, err := core.Open(core.Config{Scheme: scheme, LogSink: io.Discard})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	fmt.Printf("provisioning %d subscribers on the %s engine...\n", *subscribers, scheme)
	td, err := tatp.CreateTables(db, *subscribers)
	if err != nil {
		log.Fatal(err)
	}
	td.Load(1)
	if err := td.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running the TATP mix (80%% queries / 16%% updates / 2%% inserts / 2%% deletes)...\n")
	res := bench.Run(db, td.Mix(core.ReadCommitted), bench.Options{
		Workers:  8,
		Duration: time.Duration(*seconds) * time.Second,
		Warmup:   200 * time.Millisecond,
		Seed:     7,
	})

	fmt.Printf("\n%.0f transactions/second (%.2f%% aborted)\n\n", res.TPS(), res.AbortRate()*100)
	names := make([]string, 0, len(res.PerType))
	for n := range res.PerType {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-24s %10.0f tx/s\n", n, res.TypeTPS(n))
	}
}
