// Quickstart: open a database, create a table, and run transactions under
// each concurrency control scheme and isolation level.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/core"
)

// A row is 16 bytes: an 8-byte key and an 8-byte value.
func row(key, val uint64) []byte {
	p := make([]byte, 16)
	binary.LittleEndian.PutUint64(p, key)
	binary.LittleEndian.PutUint64(p[8:], val)
	return p
}

func key(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }
func val(p []byte) uint64 { return binary.LittleEndian.Uint64(p[8:]) }

func main() {
	// Open a multiversion database; individual transactions may choose the
	// optimistic (MV/O) or pessimistic (MV/L) scheme. Use
	// core.SingleVersion for the 1V engine.
	db, err := core.Open(core.Config{Scheme: core.MVOptimistic})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// An Ordered index keeps keys sorted (a concurrent skip list) and
	// supports ScanRange in addition to point lookups; a hash index
	// ({Buckets: n}) supports point lookups only.
	users, err := db.CreateTable(core.TableSpec{
		Name:    "users",
		Indexes: []core.IndexSpec{{Name: "id", Key: key, Ordered: true}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Insert a few rows transactionally.
	tx := db.Begin(core.WithIsolation(core.Serializable))
	for id := uint64(1); id <= 3; id++ {
		if err := tx.Insert(users, row(id, id*1000)); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("inserted 3 users")

	// Read one back.
	tx = db.Begin(core.WithIsolation(core.SnapshotIsolation))
	r, found, err := tx.Lookup(users, 0, 2, nil)
	if err != nil || !found {
		log.Fatalf("lookup failed: found=%v err=%v", found, err)
	}
	fmt.Printf("user 2 has balance %d\n", val(r.Payload()))
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Range scan over the ordered index: ascending key order, phantom-safe
	// under serializable isolation (see docs/indexes.md).
	tx = db.Begin(core.WithIsolation(core.Serializable))
	total := uint64(0)
	if err := tx.ScanRange(users, 0, 1, 3, nil, func(r core.Row) bool {
		total += val(r.Payload())
		return true
	}); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("balance of users 1..3 totals %d\n", total)

	// Update under the pessimistic scheme — optimistic and pessimistic
	// transactions coexist on the same engine.
	tx = db.Begin(core.WithScheme(core.MVPessimistic), core.WithIsolation(core.RepeatableRead))
	n, err := tx.UpdateWhere(users, 0, 2, nil, func(old []byte) []byte {
		return row(2, val(old)+500)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("updated %d row(s) pessimistically\n", n)

	// Conflicting writers: the first writer wins, the second aborts and can
	// retry.
	t1 := db.Begin()
	t2 := db.Begin()
	if _, err := t1.UpdateWhere(users, 0, 3, nil, func(old []byte) []byte {
		return row(3, 1)
	}); err != nil {
		log.Fatal(err)
	}
	_, err = t2.UpdateWhere(users, 0, 3, nil, func(old []byte) []byte {
		return row(3, 2)
	})
	fmt.Printf("second writer got conflict: %v\n", err != nil)
	_ = t2.Abort()
	if err := t1.Commit(); err != nil {
		log.Fatal(err)
	}

	s := db.Stats()
	fmt.Printf("stats: %d commits, %d aborts, %d write-write conflicts\n",
		s.Commits, s.Aborts, s.WriteConflicts)
}
