// Command mvlint runs the repo-invariant analyzer suite over the tree and
// fails on any unsuppressed diagnostic. It is a required CI step:
//
//	go run ./cmd/mvlint ./...
//
// Flags:
//
//	-json  machine-readable output: diagnostics, suppressions, analyzer totals
//	-list  enumerate analyzers with active/suppressed counts (exit 0), so
//	       reviews can diff suppression totals between PRs
//
// Suppression is explicit and reasoned: //mvlint:ignore <analyzer> <reason>
// on the diagnostic's line or the line above. Every suppression in force is
// listed in the summary. See docs/lint.md for the analyzer catalogue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON")
	list := flag.Bool("list", false, "list analyzers and suppression counts, then exit 0")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvlint:", err)
		os.Exit(2)
	}
	analyzers := lint.Analyzers()
	res, err := lint.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvlint:", err)
		os.Exit(2)
	}

	counts := res.Counts()
	if *jsonOut {
		type analyzerJSON struct {
			Name       string `json:"name"`
			Doc        string `json:"doc"`
			Active     int    `json:"active"`
			Suppressed int    `json:"suppressed"`
		}
		out := struct {
			Analyzers   []analyzerJSON    `json:"analyzers"`
			Diagnostics []lint.Diagnostic `json:"diagnostics"`
		}{Diagnostics: res.Diagnostics}
		for _, a := range analyzers {
			c := counts[a.Name]
			out.Analyzers = append(out.Analyzers, analyzerJSON{a.Name, a.Doc, c[0], c[1]})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "mvlint:", err)
			os.Exit(2)
		}
		if !*list && res.Failed() {
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Printf("%-14s %-8s %-10s doc\n", "analyzer", "active", "suppressed")
		for _, a := range analyzers {
			c := counts[a.Name]
			fmt.Printf("%-14s %-8d %-10d %s\n", a.Name, c[0], c[1], a.Doc)
		}
		fmt.Printf("%d suppression(s) in force\n", len(res.Suppressions()))
		return
	}

	active := 0
	for _, d := range res.Diagnostics {
		if !d.Suppressed {
			fmt.Println(d)
			active++
		}
	}
	if sup := res.Suppressions(); len(sup) > 0 {
		fmt.Printf("suppressions in force (%d):\n", len(sup))
		for _, d := range sup {
			fmt.Printf("  %s: [%s] waived: %s\n", d.Pos, d.Analyzer, d.Reason)
		}
	}
	if active > 0 {
		fmt.Printf("mvlint: %d diagnostic(s)\n", active)
		os.Exit(1)
	}
}
