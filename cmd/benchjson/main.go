// Command benchjson runs the repository's key benchmarks — the Figure 4/5
// update-heavy workloads and the TATP mix — through testing.Benchmark and
// emits machine-readable JSON (ns/op, allocs/op, B/op, tx/s). It exists so
// every performance PR can record a before/after trajectory file
// (BENCH_prN.json) without scraping `go test -bench` text output.
//
// Usage:
//
//	benchjson -out results.json                 # run, write results
//	benchjson -before seed.json -out BENCH.json # run, merge as before/after
//	benchjson -benchtime 300ms -quick           # faster smoke run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	chk "repro/internal/check"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/tatp"
	"repro/internal/ts"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Result is one benchmark's measurement.
type Result struct {
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	TxPerSec    float64 `json:"tx_per_sec"`
}

// Comparison pairs a before and after measurement for one benchmark.
type Comparison struct {
	Before *Result `json:"before,omitempty"`
	After  Result  `json:"after"`
	// AllocsReductionPct is 100*(1 - after/before) when a before exists.
	AllocsReductionPct *float64 `json:"allocs_reduction_pct,omitempty"`
	NsReductionPct     *float64 `json:"ns_reduction_pct,omitempty"`
}

// File is the on-disk format of a benchmark trajectory snapshot.
type File struct {
	GoVersion  string                `json:"go_version"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	BenchTime  string                `json:"benchtime"`
	Results    map[string]Comparison `json:"results"`
	// ReadOnlyCounterDelta is the number of timestamp-oracle increments
	// observed across a run of read-only fast-lane transactions (see
	// measureCounterDelta). The fast lane's contract is zero.
	ReadOnlyCounterDelta *uint64 `json:"read_only_counter_delta,omitempty"`
	// ReadOnlyCounterTxns is the number of transactions in that run.
	ReadOnlyCounterTxns uint64 `json:"read_only_counter_txns,omitempty"`
	// ReadOnlyCounterDelta1V is the same contract measured on the
	// single-version engine: transaction-ID plus end-sequence increments
	// across a run of 1V read-only fast-lane transactions. Must be zero.
	ReadOnlyCounterDelta1V *uint64 `json:"read_only_counter_delta_1v,omitempty"`
	// Recovery compares cold-start wall time from the log alone against a
	// checkpoint plus log tail over the same history (see measureRecovery).
	Recovery *RecoveryResult `json:"recovery,omitempty"`
	// SyncCommit compares commit throughput across the three durability
	// levels against a real on-disk log store, recording how many commits
	// each group-commit fsync amortizes (see measureSyncCommit).
	SyncCommit *SyncCommitResult `json:"sync_commit,omitempty"`
	// ReadOnlyPinOverflows is the number of reader-pin table overflows
	// observed during the MV read-only counter probe; the striped pin table
	// must absorb a sequential read-only stream without ever spilling to the
	// registered slow path. ReadOnlyPinOverflows1V is the same on the
	// single-version engine's node-epoch pins.
	ReadOnlyPinOverflows   *uint64 `json:"read_only_pin_overflows,omitempty"`
	ReadOnlyPinOverflows1V *uint64 `json:"read_only_pin_overflows_1v,omitempty"`
	// Sweep maps "Scenario/Scheme" to its GOMAXPROCS ladder (see -sweep):
	// the same benchmark re-run at each processor count, with the shared
	// timestamp-oracle and reader-pin instrumentation captured per point.
	Sweep map[string][]SweepPoint `json:"sweep,omitempty"`
	// Checker compares the history checker's incremental range-read path
	// against the O(model)-per-scan rebuild reference on one synthetic
	// history (see measureChecker).
	Checker *CheckerResult `json:"checker,omitempty"`
}

// CheckerResult is the checker scenario's measurement: the same
// valid-by-construction synthetic history validated twice, once with the
// incrementally maintained per-index multisets and once rebuilding each
// scan's expected view from the whole model. SpeedupX is rebuild wall time
// over incremental wall time — the factor by which the incremental path
// stretches the history length affordable in a fixed checking budget.
type CheckerResult struct {
	Rows          uint64  `json:"rows"`
	Txns          int     `json:"txns"`
	Span          uint64  `json:"span"`
	IncrementalMs float64 `json:"incremental_ms"`
	RebuildMs     float64 `json:"rebuild_ms"`
	SpeedupX      float64 `json:"speedup_x"`
}

// SweepPoint is one (scenario, scheme, GOMAXPROCS) measurement of the
// multi-core sweep.
type SweepPoint struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	NsPerOp    float64 `json:"ns_per_op"`
	TxPerSec   float64 `json:"tx_per_sec"`
	// Commits is the number of transactions committed during the measured
	// run; OracleDraws is the number of fetch-and-adds actually issued on the
	// engine's shared sequence counters over the same interval (MV: the
	// commit-timestamp funnel's physical draws, covering begin and end; 1V:
	// transaction-ID draws plus the end-sequence funnel's physical draws).
	Commits     uint64 `json:"commits"`
	OracleDraws uint64 `json:"oracle_draws"`
	// DrawsPerCommit is OracleDraws/Commits — below 1.0 once batch begins and
	// funnel combining amortize the shared counter across transactions.
	DrawsPerCommit float64 `json:"draws_per_commit"`
	// CombiningRatio is logical draws per physical fetch-and-add inside the
	// funnel (1.0 = no combining).
	CombiningRatio float64 `json:"combining_ratio"`
	// PinOverflows counts reader-pin acquisitions that found the striped
	// table full during the run.
	PinOverflows uint64 `json:"pin_overflows"`
}

// probe snapshots the shared-counter instrumentation (funnel, commits, pin
// overflows, 1V transaction IDs) so a benchmark can report deltas.
type probe struct {
	db      *core.Database
	f       ts.FunnelStats
	commits uint64
	over    uint64
	txSeq   uint64
}

func startProbe(db *core.Database) probe {
	p := probe{db: db, f: db.FunnelStats(), commits: db.Stats().Commits, over: db.PinOverflows()}
	if sv := db.SV(); sv != nil {
		p.txSeq, _ = sv.Counters()
	}
	return p
}

// finish fills sp with the deltas since startProbe; nil sp means the caller
// is running outside a sweep and only wanted the benchmark itself.
func (p probe) finish(sp *SweepPoint) {
	if sp == nil {
		return
	}
	f := p.db.FunnelStats()
	sp.Commits = p.db.Stats().Commits - p.commits
	sp.OracleDraws = f.Physical - p.f.Physical
	if sv := p.db.SV(); sv != nil {
		t, _ := sv.Counters()
		sp.OracleDraws += t - p.txSeq
	}
	if sp.Commits > 0 {
		sp.DrawsPerCommit = float64(sp.OracleDraws) / float64(sp.Commits)
	}
	sp.CombiningRatio = 1
	if d := f.Physical - p.f.Physical; d > 0 {
		sp.CombiningRatio = float64(f.Draws-p.f.Draws) / float64(d)
	}
	sp.PinOverflows = p.db.PinOverflows() - p.over
}

// SyncCommitLevel is one durability level's measurement.
type SyncCommitLevel struct {
	TxPerSec float64 `json:"tx_per_sec"`
	Commits  uint64  `json:"commits"`
	Batches  uint64  `json:"batches"`
	Fsyncs   uint64  `json:"fsyncs"`
	// CommitsPerFsync is records appended per fsync issued — the group-commit
	// amortization that keeps Fsync durability affordable. Zero at levels
	// that never fsync.
	CommitsPerFsync float64 `json:"commits_per_fsync,omitempty"`
}

// SyncCommitResult is the synchronous-commit scenario's measurement: the
// same update workload acknowledged at each durability level.
type SyncCommitResult struct {
	Workers int                        `json:"workers"`
	Levels  map[string]SyncCommitLevel `json:"levels"`
}

// RecoveryResult is the recovery scenario's measurement: the same workload
// history restored two ways.
type RecoveryResult struct {
	LogRecords     int     `json:"log_records"`
	LogOnlyMs      float64 `json:"log_only_ms"`
	CheckpointMs   float64 `json:"checkpoint_tail_ms"`
	SpeedupPct     float64 `json:"speedup_pct"`
	RowsRestored   int     `json:"rows_restored"`
	TailRecords    int     `json:"tail_records"`
	SkippedRecords int     `json:"skipped_records"`
}

const (
	rowsLarge = 50_000 // Figure 4 table (stands in for the paper's 10M rows)
	rowsSmall = 1_000  // Figure 5 hotspot table
	tatpSubs  = 2_000  // TATP population
)

var schemes = []struct {
	name   string
	scheme core.Scheme
}{
	{"MVO", core.MVOptimistic},
	{"MVL", core.MVPessimistic},
}

func openDB(scheme core.Scheme, rows uint64) (*core.Database, *core.Table, error) {
	db, err := core.Open(core.Config{Scheme: scheme, LogSink: io.Discard, LockTimeout: 10 * time.Millisecond})
	if err != nil {
		return nil, nil, err
	}
	tbl, err := workload.Table(db, rows)
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	workload.Load(db, tbl, rows)
	return db, tbl, nil
}

// runMix mirrors the root bench_test.go harness — b.N committed transactions
// across parallel workers, retrying aborts — except that workers are not
// overprovisioned beyond GOMAXPROCS: the paper pins the multiprogramming
// level to the hardware thread count, and oversubscription on small boxes
// turns hotspot benchmarks into bistable lock-convoy measurements.
func runMix(b *testing.B, db *core.Database, level core.Isolation, fn bench.TxFn) {
	var seed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1) * 7919))
		for pb.Next() {
			for {
				tx := db.Begin(core.WithIsolation(level))
				if _, err := fn(tx, rng); err != nil {
					_ = tx.Abort()
					continue
				}
				if tx.Commit() == nil {
					break
				}
			}
		}
	})
	b.StopTimer()
}

func homogeneous(scheme core.Scheme, rows uint64) func(*testing.B) {
	return func(b *testing.B) {
		db, tbl, err := openDB(scheme, rows)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		h := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: rows}, R: 10, W: 2}
		runMix(b, db, core.ReadCommitted, h.Run)
	}
}

// readMostly is the Figure-5-style read-mostly scenario: 90% read-only
// snapshot transactions (R=10), 10% updates (R=10, W=2) on the hotspot
// table. fastLane routes the readers through BeginReadOnly (no oracle
// increment, no transaction-table registration); otherwise they are regular
// registered snapshot transactions, which is the before-side of the
// comparison within one run.
func readMostly(scheme core.Scheme, fastLane bool, sp *SweepPoint) func(*testing.B) {
	return func(b *testing.B) {
		db, tbl, err := openDB(scheme, rowsSmall)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		up := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: rowsSmall}, R: 10, W: 2}
		rd := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: rowsSmall}, R: 10, W: 0}
		var seed atomic.Int64
		pr := startProbe(db)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(seed.Add(1) * 7919))
			for pb.Next() {
				for {
					var tx *core.Tx
					var fn bench.TxFn
					if rng.Intn(10) != 0 {
						fn = rd.Run
						if fastLane {
							tx = db.BeginReadOnly()
						} else {
							tx = db.Begin(core.WithIsolation(core.SnapshotIsolation))
						}
					} else {
						fn = up.Run
						tx = db.Begin(core.WithIsolation(core.ReadCommitted))
					}
					if _, err := fn(tx, rng); err != nil {
						_ = tx.Abort()
						continue
					}
					if tx.Commit() == nil {
						break
					}
				}
			}
		})
		b.StopTimer()
		pr.finish(sp)
	}
}

// commitStorm is the sweep's commit-heavy scenario: the smallest possible
// write transaction (one update, no reads) on the large table, each worker
// streaming through a TxBatch (one begin-side oracle draw per 256
// transactions). Unlike the other scenarios it runs 2 workers per P — the
// funnel combines draws from *concurrent* committers, so the storm
// deliberately oversubscribes to keep runnable peers available on every
// processor.
func commitStorm(scheme core.Scheme, sp *SweepPoint) func(*testing.B) {
	return func(b *testing.B) {
		db, tbl, err := openDB(scheme, rowsLarge)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		h := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: rowsLarge}, R: 0, W: 1}
		var seed atomic.Int64
		pr := startProbe(db)
		b.ReportAllocs()
		b.SetParallelism(2)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(seed.Add(1) * 7919))
			batch := db.BeginBatch(256, core.WithIsolation(core.ReadCommitted))
			defer batch.Close()
			for pb.Next() {
				for {
					tx := batch.Begin()
					if _, err := h.Run(tx, rng); err != nil {
						_ = tx.Abort()
						continue
					}
					if tx.Commit() == nil {
						break
					}
				}
			}
		})
		b.StopTimer()
		pr.finish(sp)
	}
}

// largeRow exercises the payload slab arena: the same R=10/W=2 mix over
// 256-byte rows, which do not fit the version's inline buffer.
func largeRow(scheme core.Scheme) func(*testing.B) {
	return func(b *testing.B) {
		const rows = uint64(10_000)
		const rowSize = 256
		db, err := core.Open(core.Config{Scheme: scheme, LogSink: io.Discard})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		tbl, err := workload.Table(db, rows)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, rowSize)
		for k := uint64(0); k < rows; k++ {
			copy(buf, workload.Row(k, k))
			db.LoadRow(tbl, buf)
		}
		runMix(b, db, core.ReadCommitted, func(tx *core.Tx, rng *rand.Rand) (int, error) {
			reads := 0
			for i := 0; i < 10; i++ {
				err := tx.Scan(tbl, 0, rng.Uint64()%rows, nil, func(r core.Row) bool {
					reads++
					return false
				})
				if err != nil {
					return reads, err
				}
			}
			local := make([]byte, rowSize)
			for i := 0; i < 2; i++ {
				if _, err := tx.UpdateWhere(tbl, 0, rng.Uint64()%rows, nil, func(old []byte) []byte {
					copy(local, old)
					return local
				}); err != nil {
					return reads, err
				}
			}
			return reads, nil
		})
	}
}

// measureCounterDelta runs n read-only fast-lane transactions on a loaded
// database and returns how many timestamp-oracle increments they performed
// in total — the fast lane's contract is exactly zero (Current() is only
// ever loaded, and read-only commits skip the end-timestamp draw).
func measureCounterDelta(n int) (delta, pinOver uint64, err error) {
	db, tbl, err := openDB(core.MVOptimistic, rowsSmall)
	if err != nil {
		return 0, 0, err
	}
	defer db.Close()
	rd := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: rowsSmall}, R: 10, W: 0}
	rng := rand.New(rand.NewSource(1))
	before := db.MV().Oracle().Current()
	overBefore := db.PinOverflows()
	for i := 0; i < n; i++ {
		tx := db.BeginReadOnly()
		if _, err := rd.Run(tx, rng); err != nil {
			_ = tx.Abort()
			return 0, 0, fmt.Errorf("read-only txn failed: %w", err)
		}
		if err := tx.Commit(); err != nil {
			return 0, 0, fmt.Errorf("read-only commit failed: %w", err)
		}
	}
	return db.MV().Oracle().Current() - before, db.PinOverflows() - overBefore, nil
}

// rangeHeavy exercises the ordered-index access path: 4 range scans of 100
// consecutive rows plus 2 point updates per transaction over an ordered
// primary index.
func rangeHeavy(scheme core.Scheme) func(*testing.B) {
	return func(b *testing.B) {
		db, err := core.Open(core.Config{Scheme: scheme, LogSink: io.Discard, LockTimeout: 10 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		tbl, err := workload.OrderedTable(db, rowsLarge)
		if err != nil {
			b.Fatal(err)
		}
		workload.Load(db, tbl, rowsLarge)
		rm := workload.RangeMix{
			Table: tbl, Dist: workload.Uniform{N: rowsLarge}, N: rowsLarge,
			Scans: 4, Span: 100, W: 2,
		}
		runMix(b, db, core.ReadCommitted, rm.Run)
	}
}

// secondaryHeavy exercises the non-unique composite secondary index: each
// transaction prefix-scans 2 groups (~rows/groups rows each) through the
// ordered (grp, id) secondary and applies 2 point updates through the hash
// primary index, each migrating a row to a random group (secondary
// unlink/link churn on duplicate-prefix chains).
func secondaryHeavy(scheme core.Scheme) func(*testing.B) {
	const groups = 512 // ~100 rows per group at rowsLarge
	return func(b *testing.B) {
		db, err := core.Open(core.Config{Scheme: scheme, LogSink: io.Discard, LockTimeout: 10 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		tbl, err := workload.SecondaryTable(db, rowsLarge, groups)
		if err != nil {
			b.Fatal(err)
		}
		workload.Load(db, tbl, rowsLarge)
		sm := workload.SecondaryMix{
			Table: tbl, Dist: workload.Uniform{N: rowsLarge}, N: rowsLarge,
			Groups: groups, Scans: 2, W: 2,
		}
		runMix(b, db, core.ReadCommitted, sm.Run)
	}
}

// measureCounterDelta1V runs n read-only fast-lane transactions on a loaded
// 1V database and returns how many shared-sequence increments (transaction
// IDs + end timestamps) they performed in total — the fast lane's contract
// is exactly zero.
func measureCounterDelta1V(n int) (delta, pinOver uint64, err error) {
	db, tbl, err := openDB(core.SingleVersion, rowsSmall)
	if err != nil {
		return 0, 0, err
	}
	defer db.Close()
	rd := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: rowsSmall}, R: 10, W: 0}
	rng := rand.New(rand.NewSource(1))
	txBefore, endBefore := db.SV().Counters()
	overBefore := db.PinOverflows()
	for i := 0; i < n; i++ {
		tx := db.BeginReadOnly()
		if _, err := rd.Run(tx, rng); err != nil {
			_ = tx.Abort()
			return 0, 0, fmt.Errorf("1V read-only txn failed: %w", err)
		}
		if err := tx.Commit(); err != nil {
			return 0, 0, fmt.Errorf("1V read-only commit failed: %w", err)
		}
	}
	txAfter, endAfter := db.SV().Counters()
	return (txAfter - txBefore) + (endAfter - endBefore), db.PinOverflows() - overBefore, nil
}

func tatpMix(scheme core.Scheme) func(*testing.B) {
	return func(b *testing.B) {
		db, err := core.Open(core.Config{Scheme: scheme, LogSink: io.Discard})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		td, err := tatp.CreateTables(db, tatpSubs)
		if err != nil {
			b.Fatal(err)
		}
		td.Load(1)
		mix := td.Mix(core.ReadCommitted)
		total := 0
		for _, m := range mix {
			total += m.Weight
		}
		var seed atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(seed.Add(1) * 104729))
			for pb.Next() {
				w := rng.Intn(total)
				var fn bench.TxFn
				for _, m := range mix {
					w -= m.Weight
					if w < 0 {
						fn = m.Fn
						break
					}
				}
				// TATP counts failed transactions without retrying them.
				tx := db.Begin(core.WithIsolation(core.ReadCommitted))
				if _, err := fn(tx, rng); err != nil {
					_ = tx.Abort()
					continue
				}
				_ = tx.Commit()
			}
		})
		b.StopTimer()
	}
}

// tatpBatch is the TATP mix with each worker running its stream through a
// TxBatch: one oracle draw per 256 transactions, registration only for the
// writing minority.
func tatpBatch(scheme core.Scheme, sp *SweepPoint) func(*testing.B) {
	return func(b *testing.B) {
		db, err := core.Open(core.Config{Scheme: scheme, LogSink: io.Discard})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		td, err := tatp.CreateTables(db, tatpSubs)
		if err != nil {
			b.Fatal(err)
		}
		td.Load(1)
		mix := td.Mix(core.ReadCommitted)
		total := 0
		for _, m := range mix {
			total += m.Weight
		}
		var seed atomic.Int64
		pr := startProbe(db)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(seed.Add(1) * 104729))
			batch := db.BeginBatch(256, core.WithIsolation(core.ReadCommitted))
			defer batch.Close()
			for pb.Next() {
				w := rng.Intn(total)
				var fn bench.TxFn
				for _, m := range mix {
					w -= m.Weight
					if w < 0 {
						fn = m.Fn
						break
					}
				}
				tx := batch.Begin()
				if _, err := fn(tx, rng); err != nil {
					_ = tx.Abort()
					continue
				}
				_ = tx.Commit()
			}
		})
		b.StopTimer()
		pr.finish(sp)
	}
}

// measureRecovery builds a logged workload history with a mid-run streaming
// checkpoint (KeepLog, so the full log survives), then restores it twice
// into fresh databases: once replaying the entire log, once from the
// checkpoint partitions (4 parallel workers) plus the filtered tail.
func measureRecovery() (*RecoveryResult, error) {
	const (
		rows     = 20_000
		loadTxns = 500 // rows per load transaction: rows/loadTxns records
		updates  = 12_000
		tailUpd  = 6_000
	)
	dir, err := os.MkdirTemp("", "benchjson-recovery-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := ckpt.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	db, err := core.Open(core.Config{Scheme: core.MVOptimistic, LogSink: store})
	if err != nil {
		return nil, err
	}
	tbl, err := workload.Table(db, rows)
	if err != nil {
		return nil, err
	}
	for base := uint64(0); base < rows; base += loadTxns {
		tx := db.Begin()
		for k := base; k < base+loadTxns && k < rows; k++ {
			if err := tx.Insert(tbl, workload.Row(k, k)); err != nil {
				return nil, err
			}
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(42))
	update := func(n int) error {
		for i := 0; i < n; i++ {
			k := rng.Uint64() % rows
			tx := db.Begin()
			if _, err := tx.UpdateWhere(tbl, 0, k, nil, func(old []byte) []byte {
				return workload.Row(k, rng.Uint64())
			}); err != nil {
				_ = tx.Abort()
				return err
			}
			if err := tx.Commit(); err != nil {
				return err
			}
		}
		return nil
	}
	if err := update(updates); err != nil {
		return nil, err
	}
	cp := ckpt.New(db, store, []ckpt.TableSpec{{Table: tbl, Partitions: 4, Lo: 0, Hi: rows - 1}},
		ckpt.Options{KeepLog: true})
	if _, err := cp.Run(); err != nil {
		return nil, err
	}
	if err := update(tailUpd); err != nil {
		return nil, err
	}
	if err := db.Close(); err != nil {
		return nil, err
	}
	if err := store.Close(); err != nil {
		return nil, err
	}

	// Path A: full-log replay (checkpoint ignored).
	storeA, err := ckpt.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	dbA, err := core.Open(core.Config{Scheme: core.MVOptimistic})
	if err != nil {
		return nil, err
	}
	defer dbA.Close()
	tblA, err := workload.Table(dbA, rows)
	if err != nil {
		return nil, err
	}
	paths, err := storeA.SegmentPaths()
	if err != nil {
		return nil, err
	}
	startA := time.Now()
	var recs []*wal.Record
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		seg, err := wal.ReadAll(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		recs = append(recs, seg...)
	}
	if _, err := recovery.ReplayRecords(dbA, recovery.TableSet{"rows": tblA}, recs); err != nil {
		return nil, err
	}
	logOnly := time.Since(startA)
	_ = storeA.Close()

	// Path B: checkpoint partitions + filtered tail.
	storeB, err := ckpt.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	defer func() { _ = storeB.Close() }()
	dbB, err := core.Open(core.Config{Scheme: core.MVOptimistic})
	if err != nil {
		return nil, err
	}
	defer dbB.Close()
	tblB, err := workload.Table(dbB, rows)
	if err != nil {
		return nil, err
	}
	startB := time.Now()
	st, err := recovery.Recover(dbB, recovery.TableSet{"rows": tblB}, storeB, recovery.Options{Workers: 4})
	if err != nil {
		return nil, err
	}
	viaCkpt := time.Since(startB)

	res := &RecoveryResult{
		LogRecords:     len(recs),
		LogOnlyMs:      float64(logOnly.Microseconds()) / 1000,
		CheckpointMs:   float64(viaCkpt.Microseconds()) / 1000,
		RowsRestored:   st.RowsRestored,
		TailRecords:    st.TailRecords,
		SkippedRecords: st.SkippedRecords,
	}
	if logOnly > 0 {
		res.SpeedupPct = 100 * (1 - viaCkpt.Seconds()/logOnly.Seconds())
	}
	return res, nil
}

// measureSyncCommit runs the same single-update workload for d at each
// durability level — Async (acknowledge on enqueue), Flush (after the batch
// write) and Fsync (after the batch fsync) — against a real on-disk log
// store, so the fsync cost and its group-commit amortization are measured,
// not simulated.
func measureSyncCommit(d time.Duration) (*SyncCommitResult, error) {
	const rows = rowsSmall
	// Group commit amortizes the fsync across *concurrent committers* —
	// goroutines blocked on the same batch — not across CPUs, so the worker
	// count floors well above GOMAXPROCS to give the flusher batches to form.
	res := &SyncCommitResult{
		Workers: max(16, runtime.GOMAXPROCS(0)),
		Levels:  make(map[string]SyncCommitLevel, 3),
	}
	levels := []struct {
		name string
		lvl  core.Durability
	}{
		{"async", core.DurabilityAsync},
		{"flush", core.DurabilityFlush},
		{"fsync", core.DurabilityFsync},
	}
	for _, l := range levels {
		dir, err := os.MkdirTemp("", "benchjson-synccommit-*")
		if err != nil {
			return nil, err
		}
		store, err := ckpt.OpenStore(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		db, err := core.Open(core.Config{
			Scheme:      core.MVOptimistic,
			LogSink:     store,
			Durability:  l.lvl,
			LockTimeout: 10 * time.Millisecond,
		})
		if err != nil {
			_ = store.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		tbl, err := workload.Table(db, rows)
		if err != nil {
			db.Close()
			_ = store.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		workload.Load(db, tbl, rows)

		var commits atomic.Uint64
		var firstErr atomic.Value
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < res.Workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(id)*7919 + 3))
				for time.Since(start) < d {
					k := rng.Uint64() % rows
					tx := db.Begin()
					if _, err := tx.UpdateWhere(tbl, 0, k, nil, func(old []byte) []byte {
						return workload.Row(k, rng.Uint64())
					}); err != nil {
						_ = tx.Abort()
						continue
					}
					if err := tx.Commit(); err == nil {
						commits.Add(1)
					} else if db.Degraded() != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		st := db.LogStats()
		db.Close()
		_ = store.Close()
		os.RemoveAll(dir)
		if err, _ := firstErr.Load().(error); err != nil {
			return nil, fmt.Errorf("sync-commit %s: %w", l.name, err)
		}
		lv := SyncCommitLevel{
			TxPerSec: float64(commits.Load()) / elapsed.Seconds(),
			Commits:  commits.Load(),
			Batches:  st.Batches,
			Fsyncs:   st.Syncs,
		}
		if st.Syncs > 0 {
			lv.CommitsPerFsync = float64(st.Appended) / float64(st.Syncs)
		}
		res.Levels[l.name] = lv
	}
	return res, nil
}

// measureChecker validates one synthetic history (8k keys, 20k transactions,
// range scans spanning up to 256 keys) with both range-read checking paths
// and reports their wall times. The history is rebuilt per run — it is a
// pure function of its arguments, so both paths see identical input — and
// each path takes the best of three runs to shed scheduler noise. Both must
// accept the history: it is valid by construction, so any verdict other
// than nil is a checker bug, not a measurement.
func measureChecker() (*CheckerResult, error) {
	const (
		rows = 8192
		txns = 20_000
		span = 256
		seed = 7
	)
	best := func(validate func(*chk.History) error) (time.Duration, error) {
		min := time.Duration(0)
		for i := 0; i < 3; i++ {
			h := chk.Synthetic(rows, txns, span, seed)
			start := time.Now()
			err := validate(h)
			d := time.Since(start)
			if err != nil {
				return 0, err
			}
			if min == 0 || d < min {
				min = d
			}
		}
		return min, nil
	}
	inc, err := best((*chk.History).Validate)
	if err != nil {
		return nil, fmt.Errorf("incremental checker rejected a valid history: %w", err)
	}
	reb, err := best((*chk.History).ValidateRebuild)
	if err != nil {
		return nil, fmt.Errorf("rebuild checker rejected a valid history: %w", err)
	}
	res := &CheckerResult{
		Rows:          rows,
		Txns:          txns,
		Span:          span,
		IncrementalMs: float64(inc.Microseconds()) / 1000,
		RebuildMs:     float64(reb.Microseconds()) / 1000,
	}
	if inc > 0 {
		res.SpeedupX = reb.Seconds() / inc.Seconds()
	}
	return res, nil
}

func toResult(r testing.BenchmarkResult) Result {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	tps := 0.0
	if r.T > 0 {
		tps = float64(r.N) / r.T.Seconds()
	}
	return Result{
		N:           r.N,
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		TxPerSec:    tps,
	}
}

func main() {
	out := flag.String("out", "", "write JSON here (default stdout)")
	before := flag.String("before", "", "merge this earlier results file as the 'before' column")
	benchtime := flag.String("benchtime", "1s", "per-benchmark measurement time (testing -benchtime syntax)")
	quick := flag.Bool("quick", false, "shortcut for -benchtime 100ms (CI smoke)")
	check := flag.Bool("check", false, "fail (exit 1) if read-only transactions perform any shared-counter increment or pin-table overflow")
	sweep := flag.String("sweep", "", "comma-separated GOMAXPROCS values (e.g. 1,4,16,64): re-run the commit-storm, TATP and read-mostly scenarios at each, recording oracle draws per commit and pin overflows")
	flag.Parse()

	if *quick {
		*benchtime = "100ms"
	}
	testing.Init()
	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	var prior *File
	if *before != "" {
		raw, err := os.ReadFile(*before)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		prior = &File{}
		if err := json.Unmarshal(raw, prior); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	type namedBench struct {
		name string
		fn   func(*testing.B)
	}
	var benches []namedBench
	for _, s := range schemes {
		benches = append(benches,
			namedBench{"Fig4Update/" + s.name, homogeneous(s.scheme, rowsLarge)},
			namedBench{"Fig5Hotspot/" + s.name, homogeneous(s.scheme, rowsSmall)},
			namedBench{"TATP/" + s.name, tatpMix(s.scheme)},
			namedBench{"ReadMostly/" + s.name + "/Registered", readMostly(s.scheme, false, nil)},
			namedBench{"ReadMostly/" + s.name + "/FastLane", readMostly(s.scheme, true, nil)},
			namedBench{"Range/" + s.name, rangeHeavy(s.scheme)},
			namedBench{"Secondary/" + s.name, secondaryHeavy(s.scheme)},
		)
	}
	benches = append(benches,
		namedBench{"LargeRow/MVO", largeRow(core.MVOptimistic)},
		namedBench{"TATPBatch/MVO", tatpBatch(core.MVOptimistic, nil)},
		namedBench{"Range/1V", rangeHeavy(core.SingleVersion)},
		namedBench{"Secondary/1V", secondaryHeavy(core.SingleVersion)},
	)

	file := File{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchTime:  *benchtime,
		Results:    make(map[string]Comparison, len(benches)),
	}
	for _, bm := range benches {
		fmt.Fprintf(os.Stderr, "running %s...\n", bm.name)
		res := toResult(testing.Benchmark(bm.fn))
		cmp := Comparison{After: res}
		if prior != nil {
			if p, ok := prior.Results[bm.name]; ok {
				b := p.After
				cmp.Before = &b
				if b.AllocsPerOp > 0 {
					pct := 100 * (1 - float64(res.AllocsPerOp)/float64(b.AllocsPerOp))
					cmp.AllocsReductionPct = &pct
				}
				if b.NsPerOp > 0 {
					pct := 100 * (1 - res.NsPerOp/b.NsPerOp)
					cmp.NsReductionPct = &pct
				}
			}
		}
		file.Results[bm.name] = cmp
		fmt.Fprintf(os.Stderr, "  %s: %.0f ns/op, %d allocs/op, %d B/op, %.0f tx/s\n",
			bm.name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.TxPerSec)
	}

	if *sweep != "" {
		vals, err := parseSweep(*sweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		file.Sweep = runSweep(vals)
	}

	const counterTxns = 10_000
	fmt.Fprintf(os.Stderr, "measuring read-only shared-counter delta (%d txns)...\n", counterTxns)
	delta, pinOver, deltaErr := measureCounterDelta(counterTxns)
	if deltaErr == nil {
		file.ReadOnlyCounterDelta = &delta
		file.ReadOnlyCounterTxns = counterTxns
		file.ReadOnlyPinOverflows = &pinOver
		fmt.Fprintf(os.Stderr, "  %d oracle increments, %d pin overflows across %d read-only txns\n", delta, pinOver, counterTxns)
	}
	delta1v, pinOver1v, delta1vErr := measureCounterDelta1V(counterTxns)
	if delta1vErr == nil {
		file.ReadOnlyCounterDelta1V = &delta1v
		file.ReadOnlyPinOverflows1V = &pinOver1v
		fmt.Fprintf(os.Stderr, "  %d 1V sequence increments, %d pin overflows across %d read-only txns\n", delta1v, pinOver1v, counterTxns)
	}

	fmt.Fprintln(os.Stderr, "measuring recovery: full-log replay vs checkpoint+tail...")
	recRes, recErr := measureRecovery()
	if recErr == nil {
		file.Recovery = recRes
		fmt.Fprintf(os.Stderr, "  %d log records: log-only %.1f ms, checkpoint+tail %.1f ms (%.0f%% faster, %d rows restored, %d tail records)\n",
			recRes.LogRecords, recRes.LogOnlyMs, recRes.CheckpointMs, recRes.SpeedupPct, recRes.RowsRestored, recRes.TailRecords)
	}

	fmt.Fprintln(os.Stderr, "measuring checker: incremental vs rebuild range-read validation...")
	ckRes, ckErr := measureChecker()
	if ckErr == nil {
		file.Checker = ckRes
		fmt.Fprintf(os.Stderr, "  %d txns over %d rows: incremental %.1f ms, rebuild %.1f ms (%.1fx)\n",
			ckRes.Txns, ckRes.Rows, ckRes.IncrementalMs, ckRes.RebuildMs, ckRes.SpeedupX)
	}

	scDur, scDurErr := time.ParseDuration(*benchtime)
	if scDurErr != nil || scDur <= 0 {
		scDur = time.Second
	}
	fmt.Fprintln(os.Stderr, "measuring synchronous commit: async vs flush vs fsync...")
	scRes, scErr := measureSyncCommit(scDur)
	if scErr == nil {
		file.SyncCommit = scRes
		for _, name := range []string{"async", "flush", "fsync"} {
			lv := scRes.Levels[name]
			fmt.Fprintf(os.Stderr, "  %s: %.0f tx/s, %d commits, %d batches, %d fsyncs (%.1f commits/fsync)\n",
				name, lv.TxPerSec, lv.Commits, lv.Batches, lv.Fsyncs, lv.CommitsPerFsync)
		}
	}

	// Write the results before acting on any failure: a long benchmark run's
	// data must survive a -check violation so there is something to diagnose
	// the regression from.
	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if deltaErr != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", deltaErr)
		os.Exit(1)
	}
	if recErr != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", recErr)
		os.Exit(1)
	}
	if delta1vErr != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", delta1vErr)
		os.Exit(1)
	}
	if scErr != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", scErr)
		os.Exit(1)
	}
	if ckErr != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", ckErr)
		os.Exit(1)
	}
	if *check && delta != 0 {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: read-only fast lane performed %d shared-counter increments (want 0)\n", delta)
		os.Exit(1)
	}
	if *check && delta1v != 0 {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: 1V read-only fast lane performed %d shared-counter increments (want 0)\n", delta1v)
		os.Exit(1)
	}
	if *check && (pinOver != 0 || pinOver1v != 0) {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: read-only fast lane overflowed the striped pin table (MV %d, 1V %d, want 0)\n", pinOver, pinOver1v)
		os.Exit(1)
	}
}

// parseSweep parses the -sweep flag: a comma-separated list of GOMAXPROCS
// values, each at least 1.
func parseSweep(s string) ([]int, error) {
	var vals []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -sweep value %q (want integers >= 1)", part)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// runSweep runs the multi-core scenarios at each GOMAXPROCS value and
// returns the ladder keyed by "Scenario/Scheme". GOMAXPROCS is restored
// before returning. Values above the machine's core count oversubscribe the
// scheduler rather than adding parallelism — still useful: combining and pin
// striping are exercised by the number of concurrent committers, not cores.
func runSweep(values []int) map[string][]SweepPoint {
	type schemePick struct {
		name   string
		scheme core.Scheme
	}
	allSchemes := []schemePick{
		{"MVO", core.MVOptimistic},
		{"MVL", core.MVPessimistic},
		{"1V", core.SingleVersion},
	}
	mvoAnd1V := []schemePick{{"MVO", core.MVOptimistic}, {"1V", core.SingleVersion}}
	scenarios := []struct {
		name    string
		schemes []schemePick
		fn      func(core.Scheme, *SweepPoint) func(*testing.B)
	}{
		{"CommitStorm", allSchemes, commitStorm},
		{"TATP", mvoAnd1V, tatpBatch},
		{"ReadMostly", mvoAnd1V, func(s core.Scheme, sp *SweepPoint) func(*testing.B) {
			return readMostly(s, true, sp)
		}},
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	out := make(map[string][]SweepPoint)
	for _, g := range values {
		runtime.GOMAXPROCS(g)
		for _, sc := range scenarios {
			for _, s := range sc.schemes {
				key := sc.name + "/" + s.name
				fmt.Fprintf(os.Stderr, "sweep GOMAXPROCS=%d %s...\n", g, key)
				sp := SweepPoint{GOMAXPROCS: g}
				res := toResult(testing.Benchmark(sc.fn(s.scheme, &sp)))
				sp.NsPerOp = res.NsPerOp
				sp.TxPerSec = res.TxPerSec
				out[key] = append(out[key], sp)
				fmt.Fprintf(os.Stderr, "  %s@%d: %.0f tx/s, %.3f draws/commit, combining %.2f, %d pin overflows\n",
					key, g, sp.TxPerSec, sp.DrawsPerCommit, sp.CombiningRatio, sp.PinOverflows)
			}
		}
	}
	return out
}
