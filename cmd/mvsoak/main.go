// Command mvsoak is the seeded soak runner: randomized multi-table bank
// workloads with cross-table constraints, optional crash/fault injection,
// and full history validation, on any or all of the three engines.
//
//	mvsoak -engine all -duration 60s -workers 4 -faults
//
// Every run prints its base seed up front. On a violation it prints the
// violating episode's seed and the exact one-episode repro command, and
// exits non-zero. Runs are bounded by -episodes or -duration (whichever is
// set; -duration splits evenly across engines with -engine all). With
// -workers 1 a run is fully deterministic given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/soak"
)

func main() {
	var (
		engine   = flag.String("engine", "all", "engine: mvo, mvl, 1v, or all")
		seed     = flag.Int64("seed", 0, "base seed (0 = derive from current time)")
		duration = flag.Duration("duration", 0, "wall-clock budget (split across engines with -engine all)")
		episodes = flag.Int("episodes", 0, "episode budget per engine (default 4 when -duration is unset)")
		first    = flag.Int("first-episode", 0, "first episode number (replay one episode of a longer run)")
		workers  = flag.Int("workers", 4, "concurrent transaction streams (1 = fully deterministic)")
		txns     = flag.Int("txns", 150, "transactions per worker per episode")
		accounts = flag.Uint64("accounts", 48, "bank accounts (2..65536)")
		faults   = flag.Bool("faults", false, "crash odd episodes at seeded fault points and recover")
		dir      = flag.String("dir", "", "scratch directory for faulted episodes (default: system temp)")
		quiet    = flag.Bool("q", false, "suppress per-episode progress lines")
	)
	flag.Parse()

	engines := map[string]core.Scheme{
		"mvo": core.MVOptimistic,
		"mvl": core.MVPessimistic,
		"1v":  core.SingleVersion,
	}
	var schemes []core.Scheme
	if *engine == "all" {
		schemes = []core.Scheme{core.MVOptimistic, core.MVPessimistic, core.SingleVersion}
	} else {
		s, ok := engines[*engine]
		if !ok {
			fmt.Fprintf(os.Stderr, "mvsoak: unknown engine %q (want mvo, mvl, 1v or all)\n", *engine)
			os.Exit(2)
		}
		schemes = []core.Scheme{s}
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	perEngine := *duration
	if perEngine > 0 && len(schemes) > 1 {
		perEngine = *duration / time.Duration(len(schemes))
	}
	fmt.Printf("mvsoak: seed=%d workers=%d txns=%d accounts=%d faults=%v GOMAXPROCS=%d\n",
		*seed, *workers, *txns, *accounts, *faults, runtime.GOMAXPROCS(0))

	exit := 0
	for _, scheme := range schemes {
		cfg := soak.Config{
			Scheme:        scheme,
			Seed:          *seed,
			Workers:       *workers,
			Episodes:      *episodes,
			Duration:      perEngine,
			FirstEpisode:  *first,
			TxnsPerWorker: *txns,
			Accounts:      *accounts,
			Faults:        *faults,
			Dir:           *dir,
		}
		if !*quiet {
			cfg.Log = func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			}
		}
		res, err := soak.Run(cfg)
		fmt.Printf("mvsoak: engine=%s episodes=%d commits=%d aborts=%d hash=%016x\n",
			soak.EngineFlag(scheme), res.Episodes, res.Commits, res.Aborts, res.Hash)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvsoak: FAIL (seed %d): %v\n", *seed, err)
			exit = 1
		}
	}
	os.Exit(exit)
}
