// Command mvbench regenerates the evaluation of "High-Performance
// Concurrency Control Mechanisms for Main-Memory Databases" (Larson et al.,
// VLDB 2011): Figures 4-9 and Tables 3-4, comparing single-version locking
// (1V), multiversion locking (MV/L) and multiversion optimistic (MV/O).
//
// Usage:
//
//	mvbench [flags]
//	  -experiment string   fig4|fig5|table3|fig6|fig7|fig8|fig9|table4|readmostly|range|all (default "all")
//	  -nlarge int          rows standing in for the paper's 10M-row table (default 200000)
//	  -nsmall int          hotspot table rows (default 1000, as in the paper)
//	  -subscribers int     TATP population (default 100000; the paper used 20M)
//	  -mpl int             maximum multiprogramming level (default 24, as in the paper)
//	  -duration duration   measured interval per point (default 400ms)
//	  -warmup duration     unmeasured warmup per point (default 100ms)
//	  -seed int            workload seed (default 1)
//	  -nolog               disable the asynchronous group-commit redo log
//
// Absolute numbers depend on the host; the paper's testbed was a 2-socket
// 12-core Nehalem. The relative behaviour of the three schemes — who wins
// under which workload, and where the crossovers fall — is the result.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "experiment to run: fig4|fig5|table3|fig6|fig7|fig8|fig9|table4|readmostly|range|all")
		nLarge      = flag.Int("nlarge", 200_000, "rows standing in for the paper's 10M-row table")
		nSmall      = flag.Int("nsmall", 1_000, "hotspot table rows")
		subscribers = flag.Int("subscribers", 100_000, "TATP population")
		mpl         = flag.Int("mpl", 24, "maximum multiprogramming level")
		duration    = flag.Duration("duration", 400*time.Millisecond, "measured interval per point")
		warmup      = flag.Duration("warmup", 100*time.Millisecond, "warmup per point")
		seed        = flag.Int64("seed", 1, "workload seed")
		noLog       = flag.Bool("nolog", false, "disable the redo log")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.NLarge = uint64(*nLarge)
	cfg.NSmall = uint64(*nSmall)
	cfg.TATPSubscribers = uint64(*subscribers)
	cfg.MaxMPL = *mpl
	cfg.Duration = *duration
	cfg.Warmup = *warmup
	cfg.Seed = *seed
	cfg.Logging = !*noLog
	var mpls []int
	for _, m := range cfg.MPLs {
		if m <= *mpl {
			mpls = append(mpls, m)
		}
	}
	cfg.MPLs = mpls

	reports, err := cfg.ByID(strings.ToLower(*experiment))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	start := time.Now()
	for i, r := range reports {
		if i > 0 {
			fmt.Println()
		}
		if _, err := r.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("\n(total runtime %v)\n", time.Since(start).Round(time.Millisecond))
}
