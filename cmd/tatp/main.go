// Command tatp runs the TATP telecommunication benchmark (Section 5.3 of
// the paper) against a chosen concurrency control scheme and prints
// per-transaction-type throughput, reproducing Table 4 one scheme at a time
// with full detail.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/tatp"
)

func main() {
	var (
		schemeName  = flag.String("scheme", "mvo", "concurrency control scheme: 1v|mvl|mvo")
		subscribers = flag.Int("subscribers", 100_000, "subscriber population (the paper used 20M)")
		workers     = flag.Int("mpl", 24, "multiprogramming level")
		duration    = flag.Duration("duration", 2*time.Second, "measured interval")
		warmup      = flag.Duration("warmup", 500*time.Millisecond, "warmup")
		seed        = flag.Int64("seed", 1, "seed")
		isoName     = flag.String("iso", "rc", "isolation level: rc|si|rr|ser")
		noLog       = flag.Bool("nolog", false, "disable the redo log")
	)
	flag.Parse()

	var scheme core.Scheme
	switch *schemeName {
	case "1v":
		scheme = core.SingleVersion
	case "mvl":
		scheme = core.MVPessimistic
	case "mvo":
		scheme = core.MVOptimistic
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}
	var level core.Isolation
	switch *isoName {
	case "rc":
		level = core.ReadCommitted
	case "si":
		level = core.SnapshotIsolation
	case "rr":
		level = core.RepeatableRead
	case "ser":
		level = core.Serializable
	default:
		fmt.Fprintf(os.Stderr, "unknown isolation %q\n", *isoName)
		os.Exit(2)
	}

	cfg := core.Config{Scheme: scheme}
	if !*noLog {
		cfg.LogSink = io.Discard
	}
	db, err := core.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()

	fmt.Printf("loading %d subscribers...\n", *subscribers)
	loadStart := time.Now()
	td, err := tatp.CreateTables(db, uint64(*subscribers))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	td.Load(*seed)
	fmt.Printf("loaded in %v\n", time.Since(loadStart).Round(time.Millisecond))

	res := bench.Run(db, td.Mix(level), bench.Options{
		Workers:  *workers,
		Duration: *duration,
		Warmup:   *warmup,
		Seed:     *seed,
	})

	fmt.Printf("\nTATP %s @ %s, MPL=%d, %v measured\n", scheme, level, *workers, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("total: %.0f tx/sec, abort rate %.2f%%\n\n", res.TPS(), res.AbortRate()*100)
	names := make([]string, 0, len(res.PerType))
	for name := range res.PerType {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-24s %12s %10s\n", "transaction", "tx/sec", "aborts")
	for _, name := range names {
		tr := res.PerType[name]
		fmt.Printf("%-24s %12.0f %10d\n", name, res.TypeTPS(name), tr.Aborts)
	}
	st := res.Stats
	fmt.Printf("\nengine: commits=%d aborts=%d ww-conflicts=%d validation-fails=%d lock-timeouts=%d deadlock-victims=%d gc-reclaimed=%d\n",
		st.Commits, st.Aborts, st.WriteConflicts, st.ValidationFails, st.LockTimeouts, st.DeadlockVictims, st.VersionsReclaimed)
}
