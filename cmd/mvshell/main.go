// Command mvshell is a tiny interactive shell over the storage engine,
// useful for exploring multiversion behaviour by hand: run concurrent
// transactions, read and write keys, and watch visibility, conflicts and
// validation happen.
//
//	$ mvshell -scheme mvo
//	> begin t1 serializable
//	> put t1 alice 100
//	> commit t1
//	> begin t2 snapshot
//	> get t2 alice
//	alice = 100
//
// Commands:
//
//	begin <tx> [rc|si|rr|ser] [opt|pess]   start a transaction
//	get <tx> <key>                         read a key
//	put <tx> <key> <value>                 insert or update
//	del <tx> <key>                         delete
//	commit <tx> / abort <tx>               finish a transaction
//	stats                                  engine counters
//	gc                                     run a garbage collection round
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
)

func hashKey(p []byte) uint64 {
	// Payload: length-prefixed key string + value. Key extraction hashes
	// the key bytes (FNV-1a).
	n := int(p[0])
	h := uint64(14695981039346656037)
	for _, b := range p[1 : 1+n] {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func encode(key, val string) []byte {
	p := make([]byte, 0, 2+len(key)+len(val))
	p = append(p, byte(len(key)))
	p = append(p, key...)
	p = append(p, val...)
	return p
}

func decode(p []byte) (key, val string) {
	n := int(p[0])
	return string(p[1 : 1+n]), string(p[1+n:])
}

func main() {
	schemeName := flag.String("scheme", "mvo", "default scheme: 1v|mvl|mvo")
	flag.Parse()
	var scheme core.Scheme
	switch *schemeName {
	case "1v":
		scheme = core.SingleVersion
	case "mvl":
		scheme = core.MVPessimistic
	case "mvo":
		scheme = core.MVOptimistic
	default:
		fmt.Fprintln(os.Stderr, "unknown scheme")
		os.Exit(2)
	}
	db, err := core.Open(core.Config{Scheme: scheme})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()
	tbl, err := db.CreateTable(core.TableSpec{
		Name:    "kv",
		Indexes: []core.IndexSpec{{Name: "key", Key: hashKey, Buckets: 1 << 12}},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	txs := make(map[string]*core.Tx)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Printf("mvshell (%s engine) — 'help' for commands\n", scheme)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("begin <tx> [rc|si|rr|ser] [opt|pess] | get <tx> <key> | put <tx> <key> <val> | del <tx> <key> | commit <tx> | abort <tx> | stats | gc | quit")
		case "begin":
			if len(fields) < 2 {
				fmt.Println("usage: begin <tx> [rc|si|rr|ser] [opt|pess]")
				break
			}
			opts := []core.TxOption{}
			level := core.ReadCommitted
			for _, f := range fields[2:] {
				switch f {
				case "rc":
					level = core.ReadCommitted
				case "si", "snapshot":
					level = core.SnapshotIsolation
				case "rr":
					level = core.RepeatableRead
				case "ser", "serializable":
					level = core.Serializable
				case "opt":
					opts = append(opts, core.WithScheme(core.MVOptimistic))
				case "pess":
					opts = append(opts, core.WithScheme(core.MVPessimistic))
				}
			}
			opts = append(opts, core.WithIsolation(level))
			txs[fields[1]] = db.Begin(opts...)
			fmt.Printf("%s started (%s)\n", fields[1], level)
		case "get", "put", "del", "commit", "abort":
			if len(fields) < 2 {
				fmt.Println("missing transaction name")
				break
			}
			tx, ok := txs[fields[1]]
			if !ok {
				fmt.Printf("no transaction %q\n", fields[1])
				break
			}
			switch fields[0] {
			case "get":
				if len(fields) < 3 {
					fmt.Println("usage: get <tx> <key>")
					break
				}
				key := fields[2]
				row, found, err := tx.Lookup(tbl, 0, hashKey(encode(key, "")),
					func(p []byte) bool { k, _ := decode(p); return k == key })
				if err != nil {
					fmt.Printf("error: %v (transaction must abort)\n", err)
					break
				}
				if !found {
					fmt.Printf("%s not found\n", key)
					break
				}
				_, v := decode(row.Payload())
				fmt.Printf("%s = %s\n", key, v)
			case "put":
				if len(fields) < 4 {
					fmt.Println("usage: put <tx> <key> <value>")
					break
				}
				key, val := fields[2], fields[3]
				row, found, err := tx.Lookup(tbl, 0, hashKey(encode(key, "")),
					func(p []byte) bool { k, _ := decode(p); return k == key })
				if err != nil {
					fmt.Printf("error: %v\n", err)
					break
				}
				if found {
					err = tx.Update(tbl, row, encode(key, val))
				} else {
					err = tx.Insert(tbl, encode(key, val))
				}
				if err != nil {
					fmt.Printf("error: %v\n", err)
					break
				}
				fmt.Println("ok")
			case "del":
				if len(fields) < 3 {
					fmt.Println("usage: del <tx> <key>")
					break
				}
				key := fields[2]
				n, err := tx.DeleteWhere(tbl, 0, hashKey(encode(key, "")),
					func(p []byte) bool { k, _ := decode(p); return k == key })
				if err != nil {
					fmt.Printf("error: %v\n", err)
					break
				}
				fmt.Printf("%d deleted\n", n)
			case "commit":
				if err := tx.Commit(); err != nil {
					fmt.Printf("aborted: %v\n", err)
				} else {
					fmt.Println("committed")
				}
				delete(txs, fields[1])
			case "abort":
				_ = tx.Abort()
				fmt.Println("aborted")
				delete(txs, fields[1])
			}
		case "stats":
			s := db.Stats()
			fmt.Printf("commits=%d aborts=%d ww-conflicts=%d validation-fails=%d lock-failures=%d lock-timeouts=%d deadlock-victims=%d retired=%d reclaimed=%d\n",
				s.Commits, s.Aborts, s.WriteConflicts, s.ValidationFails, s.LockFailures, s.LockTimeouts, s.DeadlockVictims, s.VersionsRetired, s.VersionsReclaimed)
		case "gc":
			fmt.Printf("%d versions reclaimed\n", db.CollectGarbage(0))
		default:
			// Allow "sleep N" for scripted demos.
			if fields[0] == "sleep" && len(fields) == 2 {
				if ms, err := strconv.Atoi(fields[1]); err == nil {
					fmt.Printf("(sleeping %dms)\n", ms)
					_ = ms
				}
				break
			}
			fmt.Printf("unknown command %q (try 'help')\n", fields[0])
		}
		fmt.Print("> ")
	}
}
